//! Offline dynamic-workload analysis: replay a trace into a
//! [`DynReport`].
//!
//! A dynamic run perturbs the cluster on purpose — sensor drift decays
//! old mass and injects fresh readings, churn spawns and retires peers —
//! and the interesting question is no longer "did it converge" but "did
//! it *re*-converge after each perturbation, and do the books still
//! balance". [`DynReport::from_events`] derives both halves from a JSONL
//! trace alone:
//!
//! * **episode timeline** — `cluster_telemetry` samples are replayed
//!   into a [`TelemetrySeries`] (elapsed milliseconds as the round axis)
//!   and segmented by [`TelemetrySeries::episodes`] into converged →
//!   perturbed → re-converged episodes with per-episode settle times.
//! * **perturbation ledger** — `sensor_drift`, `peer_joined` and
//!   `peer_retired` events are the scripted dynamics; `grains_voided`
//!   events carry the drift terms rolled back by crash–restarts.
//! * **reconciliation** — the net traced injection
//!   (`drift injected + join units − voided injected`) and forgetting
//!   (`drift forgotten − voided forgotten`) must equal what the grain
//!   auditor settled in `audit_summary`, to the grain. A mismatch, a
//!   perturbed run that never re-converged, or a violated conservation
//!   verdict is an anomaly, and any anomaly fails the CI dyn gate
//!   ([`DynReport::clean`]).
//! * **staleness** — per-node re-read counts and last re-read tick show
//!   which sensors went stale (no drift event while the schedule was
//!   active).

use std::collections::BTreeMap;
use std::fmt;

use crate::event::TraceEvent;
use crate::json::{field, num, str as jstr, unum, Json, JsonError};
use crate::telemetry::{Episode, TelemetrySample, TelemetrySeries};

/// Tuning for the episode segmentation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynOptions {
    /// Samples that must satisfy the flat-low-tail rule to declare the
    /// converged regime (see [`TelemetrySeries::converged`]).
    pub window: usize,
    /// Maximum dispersion delta between consecutive in-window samples.
    pub delta_tol: f64,
    /// Dispersion level bounding the converged regime.
    pub level: f64,
}

impl Default for DynOptions {
    fn default() -> Self {
        DynOptions {
            window: 3,
            delta_tol: 1e-3,
            level: 1e-2,
        }
    }
}

/// One scripted churn event as the trace recorded it.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnRecord {
    /// The joining or retiring node.
    pub node: usize,
    /// Grains it brought in (join) or held when told to leave (retire).
    pub grains: u64,
    /// Seconds since cluster start.
    pub at: f64,
}

/// Per-node sensor staleness: how often and how recently it re-read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Staleness {
    /// Drift events this node played.
    pub re_reads: u64,
    /// The node's gossip tick at its last re-read.
    pub last_tick: u64,
}

/// A red flag the replay raises; any anomaly fails the CI dyn gate.
#[derive(Debug, Clone, PartialEq)]
pub enum DynAnomaly {
    /// Traced net injections disagree with what the auditor settled.
    InjectedMismatch {
        /// `drift injected + join units − voided injected` in the trace.
        traced: i64,
        /// The auditor's settled injection total.
        audited: u64,
    },
    /// Traced net forgetting disagrees with what the auditor settled.
    ForgottenMismatch {
        /// `drift forgotten − voided forgotten` in the trace.
        traced: i64,
        /// The auditor's settled forgetting total.
        audited: u64,
    },
    /// The trajectory left the converged regime and never settled again.
    NeverReconverged {
        /// Elapsed-ms sample at which convergence was last lost.
        lost_at_ms: u64,
    },
    /// Dynamics were scripted but the trace carries no telemetry to
    /// segment — re-convergence cannot be confirmed either way.
    NoTelemetry,
    /// The auditor itself reported the conservation identity violated.
    NotConserved,
}

impl fmt::Display for DynAnomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynAnomaly::InjectedMismatch { traced, audited } => write!(
                f,
                "injection mismatch: trace nets {traced} grains, auditor settled {audited}"
            ),
            DynAnomaly::ForgottenMismatch { traced, audited } => write!(
                f,
                "forgetting mismatch: trace nets {traced} grains, auditor settled {audited}"
            ),
            DynAnomaly::NeverReconverged { lost_at_ms } => write!(
                f,
                "never re-converged after losing convergence at {lost_at_ms} ms"
            ),
            DynAnomaly::NoTelemetry => {
                write!(f, "dynamics scripted but no telemetry samples in the trace")
            }
            DynAnomaly::NotConserved => {
                write!(f, "the grain auditor reported conservation violated")
            }
        }
    }
}

/// The dynamic-workload story of one traced run, replayed offline.
#[derive(Debug, Clone, PartialEq)]
pub struct DynReport {
    /// Events consumed.
    pub events: usize,
    /// Nodes declared by `cluster_started` (0 if the event is missing).
    pub nodes: usize,
    /// Telemetry samples replayed into the episode series.
    pub samples: usize,
    /// Converged → perturbed → re-converged episodes; round units are
    /// elapsed milliseconds.
    pub episodes: Vec<Episode>,
    /// Sensor re-reads traced.
    pub drift_events: u64,
    /// Grains injected by traced re-reads (before voiding).
    pub drift_injected: u64,
    /// Grains forgotten by traced re-reads (before voiding).
    pub drift_forgotten: u64,
    /// Drift injections rolled back by crash–restarts.
    pub voided_injected: u64,
    /// Drift forgetting rolled back by crash–restarts.
    pub voided_forgotten: u64,
    /// Mid-run joins, in trace order.
    pub joins: Vec<ChurnRecord>,
    /// Graceful retirements, in trace order.
    pub retirements: Vec<ChurnRecord>,
    /// Per-node sensor staleness.
    pub staleness: BTreeMap<usize, Staleness>,
    /// The auditor's `(injected, forgotten, conserved)`, when the run
    /// carried an `audit_summary`.
    pub audit: Option<(u64, u64, bool)>,
    /// Final outcome → node count (`"completed"`, `"retired"`, …).
    pub outcomes: BTreeMap<String, usize>,
    /// Red flags; any fails the gate.
    pub anomalies: Vec<DynAnomaly>,
}

impl DynReport {
    /// Replays a JSONL trace file into a report. Unknown event types are
    /// skipped (forward compatibility); malformed lines are errors.
    ///
    /// # Errors
    ///
    /// [`JsonError`] naming the offending line, as for
    /// [`crate::analyze::TraceReport::from_jsonl`].
    pub fn from_jsonl(text: &str, opts: &DynOptions) -> Result<DynReport, JsonError> {
        let (events, _unknown) = crate::causal::parse_jsonl(text)?;
        Ok(DynReport::from_events(&events, opts))
    }

    /// Replays a stream of events (in file order) into a report.
    pub fn from_events(events: &[TraceEvent], opts: &DynOptions) -> DynReport {
        let mut report = DynReport {
            events: events.len(),
            nodes: 0,
            samples: 0,
            episodes: Vec::new(),
            drift_events: 0,
            drift_injected: 0,
            drift_forgotten: 0,
            voided_injected: 0,
            voided_forgotten: 0,
            joins: Vec::new(),
            retirements: Vec::new(),
            staleness: BTreeMap::new(),
            audit: None,
            outcomes: BTreeMap::new(),
            anomalies: Vec::new(),
        };
        let mut series = TelemetrySeries::new();
        for ev in events {
            match ev {
                TraceEvent::ClusterStarted { nodes, .. } => report.nodes = *nodes,
                TraceEvent::ClusterTelemetry {
                    elapsed_ms,
                    live,
                    dispersion,
                    unix_ms,
                } => series.push(TelemetrySample {
                    round: *elapsed_ms as u64,
                    live: *live,
                    classifications_mean: 0.0,
                    classifications_max: 0,
                    weight_spread: 0.0,
                    mean_error: None,
                    max_error: None,
                    dispersion: Some(*dispersion),
                    unix_ms: *unix_ms,
                }),
                TraceEvent::SensorDrift {
                    node,
                    injected,
                    forgotten,
                    tick,
                    ..
                } => {
                    report.drift_events += 1;
                    report.drift_injected += injected;
                    report.drift_forgotten += forgotten;
                    let s = report.staleness.entry(*node).or_default();
                    s.re_reads += 1;
                    s.last_tick = s.last_tick.max(*tick);
                }
                TraceEvent::GrainsVoided {
                    injected,
                    forgotten,
                    ..
                } => {
                    report.voided_injected += injected;
                    report.voided_forgotten += forgotten;
                }
                TraceEvent::PeerJoined { node, grains, at } => report.joins.push(ChurnRecord {
                    node: *node,
                    grains: *grains,
                    at: *at,
                }),
                TraceEvent::PeerRetired { node, grains, at } => {
                    report.retirements.push(ChurnRecord {
                        node: *node,
                        grains: *grains,
                        at: *at,
                    })
                }
                TraceEvent::AuditSummary {
                    injected,
                    forgotten,
                    conserved,
                    ..
                } => report.audit = Some((*injected, *forgotten, *conserved)),
                TraceEvent::PeerFinal { outcome, .. } => {
                    *report.outcomes.entry(outcome.clone()).or_insert(0) += 1;
                }
                _ => {}
            }
        }
        report.samples = series.len();
        report.episodes = series.episodes(opts.window, opts.delta_tol, opts.level);

        // Verdicts.
        let dynamic =
            report.drift_events > 0 || !report.joins.is_empty() || !report.retirements.is_empty();
        if let Some((injected, forgotten, conserved)) = report.audit {
            let join_units: u64 = report.joins.iter().map(|j| j.grains).sum();
            let traced_injected =
                report.drift_injected as i64 + join_units as i64 - report.voided_injected as i64;
            if traced_injected != injected as i64 {
                report.anomalies.push(DynAnomaly::InjectedMismatch {
                    traced: traced_injected,
                    audited: injected,
                });
            }
            let traced_forgotten = report.drift_forgotten as i64 - report.voided_forgotten as i64;
            if traced_forgotten != forgotten as i64 {
                report.anomalies.push(DynAnomaly::ForgottenMismatch {
                    traced: traced_forgotten,
                    audited: forgotten,
                });
            }
            if !conserved {
                report.anomalies.push(DynAnomaly::NotConserved);
            }
        }
        if dynamic && report.samples == 0 {
            report.anomalies.push(DynAnomaly::NoTelemetry);
        }
        if let Some(last) = report.episodes.last() {
            if let Some(lost) = last.lost_round {
                report
                    .anomalies
                    .push(DynAnomaly::NeverReconverged { lost_at_ms: lost });
            }
        }
        report
    }

    /// Settle time of the final episode, in the series' ms axis.
    pub fn final_settle_ms(&self) -> Option<u64> {
        self.episodes.last().map(|e| e.settle_rounds)
    }

    /// Nodes from the head count with zero traced re-reads, given that
    /// at least one node did re-read — the stale sensors.
    pub fn stale_nodes(&self) -> Vec<usize> {
        if self.drift_events == 0 {
            return Vec::new();
        }
        (0..self.nodes)
            .filter(|id| !self.staleness.contains_key(id))
            .collect()
    }

    /// `true` when the replay raised no anomaly — the CI dyn gate.
    pub fn clean(&self) -> bool {
        self.anomalies.is_empty()
    }

    /// Encodes the full report as one JSON object (the `--json` output).
    pub fn to_json(&self) -> Json {
        let episodes = self
            .episodes
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    field("settled_ms", unum(e.settled_round)),
                    field("lost_ms", e.lost_round.map(unum).unwrap_or(Json::Null)),
                    field("settle_ms", unum(e.settle_rounds)),
                ])
            })
            .collect();
        let churn = |list: &[ChurnRecord]| {
            Json::Arr(
                list.iter()
                    .map(|c| {
                        Json::Obj(vec![
                            field("node", unum(c.node as u64)),
                            field("grains", unum(c.grains)),
                            field("at", num(c.at)),
                        ])
                    })
                    .collect(),
            )
        };
        let staleness = self
            .staleness
            .iter()
            .map(|(&node, s)| {
                Json::Obj(vec![
                    field("node", unum(node as u64)),
                    field("re_reads", unum(s.re_reads)),
                    field("last_tick", unum(s.last_tick)),
                ])
            })
            .collect();
        let outcomes = self
            .outcomes
            .iter()
            .map(|(k, &v)| field(k, unum(v as u64)))
            .collect();
        let anomalies = self.anomalies.iter().map(|a| jstr(a.to_string())).collect();
        Json::Obj(vec![
            field("events", unum(self.events as u64)),
            field("nodes", unum(self.nodes as u64)),
            field("samples", unum(self.samples as u64)),
            field("episodes", Json::Arr(episodes)),
            field("drift_events", unum(self.drift_events)),
            field("drift_injected", unum(self.drift_injected)),
            field("drift_forgotten", unum(self.drift_forgotten)),
            field("voided_injected", unum(self.voided_injected)),
            field("voided_forgotten", unum(self.voided_forgotten)),
            field("joins", churn(&self.joins)),
            field("retirements", churn(&self.retirements)),
            field("staleness", Json::Arr(staleness)),
            field(
                "audit_injected",
                self.audit.map(|(i, _, _)| unum(i)).unwrap_or(Json::Null),
            ),
            field(
                "audit_forgotten",
                self.audit.map(|(_, g, _)| unum(g)).unwrap_or(Json::Null),
            ),
            field(
                "conserved",
                self.audit
                    .map(|(_, _, c)| Json::Bool(c))
                    .unwrap_or(Json::Null),
            ),
            field("outcomes", Json::Obj(outcomes)),
            field("anomalies", Json::Arr(anomalies)),
            field("clean", Json::Bool(self.clean())),
        ])
    }
}

impl fmt::Display for DynReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "dyn: {} events, {} nodes, {} telemetry samples",
            self.events, self.nodes, self.samples
        )?;
        writeln!(
            f,
            "dynamics: {} re-reads (+{} −{} grains, voided +{} −{}), {} joins, {} retirements",
            self.drift_events,
            self.drift_injected,
            self.drift_forgotten,
            self.voided_injected,
            self.voided_forgotten,
            self.joins.len(),
            self.retirements.len(),
        )?;
        if self.episodes.is_empty() {
            writeln!(f, "episodes: none (never settled)")?;
        } else {
            writeln!(f, "episodes: {}", self.episodes.len())?;
            for (i, e) in self.episodes.iter().enumerate() {
                let end = e
                    .lost_round
                    .map(|r| format!("lost at {r} ms"))
                    .unwrap_or_else(|| "held to the end".into());
                writeln!(
                    f,
                    "  {}: settled at {} ms after {} ms perturbed, {}",
                    i + 1,
                    e.settled_round,
                    e.settle_rounds,
                    end
                )?;
            }
        }
        let stale = self.stale_nodes();
        if !stale.is_empty() {
            writeln!(f, "stale sensors (no re-read): {stale:?}")?;
        }
        match self.audit {
            Some((injected, forgotten, conserved)) => writeln!(
                f,
                "auditor: injected={injected} forgotten={forgotten} conserved={conserved}"
            )?,
            None => writeln!(f, "auditor: no audit_summary in the trace")?,
        }
        if !self.outcomes.is_empty() {
            let parts: Vec<String> = self
                .outcomes
                .iter()
                .map(|(k, v)| format!("{v} {k}"))
                .collect();
            writeln!(f, "outcomes: {}", parts.join(", "))?;
        }
        if self.anomalies.is_empty() {
            writeln!(f, "anomalies: none")?;
        } else {
            writeln!(f, "anomalies: {}", self.anomalies.len())?;
            for a in &self.anomalies {
                writeln!(f, "  - {a}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry(elapsed_ms: f64, dispersion: f64) -> TraceEvent {
        TraceEvent::ClusterTelemetry {
            elapsed_ms,
            live: 4,
            dispersion,
            unix_ms: None,
        }
    }

    fn drift(node: usize, injected: u64, forgotten: u64, tick: u64) -> TraceEvent {
        TraceEvent::SensorDrift {
            node,
            incarnation: 0,
            injected,
            forgotten,
            tick,
        }
    }

    fn settled_then_perturbed_then_settled() -> Vec<TraceEvent> {
        vec![
            TraceEvent::ClusterStarted {
                nodes: 4,
                initial_grains: 4000,
            },
            telemetry(10.0, 0.9),
            telemetry(20.0, 0.005),
            telemetry(30.0, 0.0051),
            telemetry(40.0, 0.0049),
            drift(1, 1000, 400, 17),
            telemetry(50.0, 0.7),
            telemetry(60.0, 0.004),
            telemetry(70.0, 0.0041),
            telemetry(80.0, 0.0042),
            TraceEvent::AuditSummary {
                initial: 4000,
                final_grains: 4600,
                gains: 0,
                losses: 0,
                injected: 1000,
                forgotten: 400,
                exact: true,
                conserved: true,
            },
        ]
    }

    #[test]
    fn clean_drift_run_segments_two_episodes() {
        let report = DynReport::from_events(
            &settled_then_perturbed_then_settled(),
            &DynOptions::default(),
        );
        assert!(report.clean(), "anomalies: {:?}", report.anomalies);
        assert_eq!(report.episodes.len(), 2, "{:?}", report.episodes);
        assert_eq!(report.episodes[0].settled_round, 40);
        assert_eq!(report.episodes[0].lost_round, Some(50));
        assert_eq!(report.episodes[1].settled_round, 80);
        assert_eq!(report.episodes[1].settle_rounds, 30, "50 → 80 ms");
        assert_eq!(report.episodes[1].lost_round, None);
        assert_eq!(report.drift_events, 1);
        assert_eq!(report.staleness.get(&1).unwrap().re_reads, 1);
        assert_eq!(report.stale_nodes(), vec![0, 2, 3]);
    }

    #[test]
    fn injection_mismatch_is_an_anomaly() {
        let mut events = settled_then_perturbed_then_settled();
        // The auditor settled more injection than the trace shows.
        if let Some(TraceEvent::AuditSummary { injected, .. }) = events.last_mut() {
            *injected = 1500;
        }
        let report = DynReport::from_events(&events, &DynOptions::default());
        assert!(report.anomalies.iter().any(|a| matches!(
            a,
            DynAnomaly::InjectedMismatch {
                traced: 1000,
                audited: 1500
            }
        )));
    }

    #[test]
    fn voided_drift_reconciles_against_the_auditor() {
        let mut events = settled_then_perturbed_then_settled();
        // A crash–restart voided the whole re-read; the auditor settles 0.
        events.push(TraceEvent::GrainsVoided {
            node: 1,
            incarnation: 0,
            split: 0,
            merged: 0,
            returned: 0,
            injected: 1000,
            forgotten: 400,
        });
        if let Some(TraceEvent::AuditSummary {
            injected,
            forgotten,
            ..
        }) = events
            .iter_mut()
            .rfind(|e| matches!(e, TraceEvent::AuditSummary { .. }))
        {
            *injected = 0;
            *forgotten = 0;
        }
        let report = DynReport::from_events(&events, &DynOptions::default());
        assert!(report.clean(), "anomalies: {:?}", report.anomalies);
    }

    #[test]
    fn join_units_count_as_injection() {
        let mut events = settled_then_perturbed_then_settled();
        events.insert(
            5,
            TraceEvent::PeerJoined {
                node: 4,
                grains: 1000,
                at: 0.045,
            },
        );
        if let Some(TraceEvent::AuditSummary { injected, .. }) = events.last_mut() {
            *injected = 2000;
        }
        let report = DynReport::from_events(&events, &DynOptions::default());
        assert!(report.clean(), "anomalies: {:?}", report.anomalies);
        assert_eq!(report.joins.len(), 1);
    }

    #[test]
    fn lost_convergence_without_recovery_is_an_anomaly() {
        let events = vec![
            telemetry(10.0, 0.005),
            telemetry(20.0, 0.0051),
            telemetry(30.0, 0.0049),
            telemetry(40.0, 0.9),
            telemetry(50.0, 0.8),
        ];
        let report = DynReport::from_events(&events, &DynOptions::default());
        assert!(report
            .anomalies
            .iter()
            .any(|a| matches!(a, DynAnomaly::NeverReconverged { lost_at_ms: 40 })));
    }

    #[test]
    fn dynamics_without_telemetry_flagged() {
        let events = vec![drift(0, 1000, 500, 3)];
        let report = DynReport::from_events(&events, &DynOptions::default());
        assert!(report
            .anomalies
            .iter()
            .any(|a| matches!(a, DynAnomaly::NoTelemetry)));
    }

    #[test]
    fn static_trace_is_clean_and_inert() {
        let report = DynReport::from_events(&[], &DynOptions::default());
        assert!(report.clean());
        assert!(report.episodes.is_empty());
        assert_eq!(report.final_settle_ms(), None);
        assert!(report.stale_nodes().is_empty());
    }

    #[test]
    fn json_encodes_episodes_and_gate() {
        let report = DynReport::from_events(
            &settled_then_perturbed_then_settled(),
            &DynOptions::default(),
        );
        let text = report.to_json().to_string();
        let parsed = Json::parse(&text).expect("valid json");
        assert_eq!(parsed.get("clean").and_then(Json::as_bool), Some(true));
        let eps = parsed.get("episodes").and_then(Json::as_array).unwrap();
        assert_eq!(eps.len(), 2);
        assert_eq!(
            eps[1].get("settle_ms").and_then(Json::as_f64),
            Some(30.0),
            "{text}"
        );
    }
}
