#![warn(missing_docs)]
//! Structured observability for the distclass stack.
//!
//! The paper's evidence (Figures 2–4) is a set of *trajectories* — error
//! per round, weight distribution, live-node counts under churn — but the
//! engines and runtime historically exposed only end-of-run counter
//! totals. This crate supplies the missing layer, with no dependencies so
//! every other crate can use it without cycles:
//!
//! - [`TraceEvent`]: one typed event model covering rounds/ticks, message
//!   fate, fault activation/healing, peer crash/restart/checkpoint, and
//!   grain movements (split/merge/return) with voiding — enough to replay
//!   the grain-conservation ledger from a trace alone.
//! - [`TraceSink`] with three implementations: [`NullSink`] (benchmark
//!   control), [`RingSink`] (in-memory, tests and tooling), and
//!   [`JsonlSink`] (one JSON object per line, for external tooling).
//! - [`Tracer`]: a cloneable handle holding an optional shared sink.
//!   `Tracer::disabled()` costs one branch per call site and never builds
//!   the event, keeping hot paths at their untraced cost.
//! - [`TelemetrySample`]/[`TelemetrySeries`]: the per-round convergence
//!   measurements (classification sizes, error vs. ground truth, weight
//!   spread, dispersion) the experiments consume.
//! - [`json`]: the minimal JSON reader/writer backing all of the above
//!   (the workspace has no serde).

//! - [`metrics`]: the aggregate side — a [`MetricsRegistry`] of counters,
//!   gauges, and mergeable log-bucketed histograms behind the same
//!   zero-cost-when-disabled handle pattern ([`Metrics`]).
//! - [`prom`]: Prometheus text-format exposition of a registry snapshot,
//!   plus a minimal routed std-only HTTP server ([`prom::HttpServer`])
//!   behind the scrape endpoint ([`prom::PromServer`]).
//! - [`live`]: the live operations console — a [`LiveAggregator`] tees
//!   off the trace stream and [`LiveConsole`] serves the dashboard,
//!   `/snapshot.json` and the `/events` long-poll while the run is
//!   still going.
//! - [`analyze`]: offline trace analysis — replays a JSONL trace into a
//!   [`TraceReport`] with per-link latency, fault windows, per-peer grain
//!   ledgers, convergence detection, and anomaly flags.
//! - [`causal`]: happens-before reconstruction — rebuilds the causal DAG
//!   from Lamport/span stamps into a [`CausalReport`] with the
//!   convergence critical path, exact grain provenance, and the
//!   influence matrix.
//! - [`byz`]: Byzantine-defense analysis — replays a trace into a
//!   [`ByzReport`] with detection/false-positive rates, mean detection
//!   tick, audit bandwidth overhead, and reconciliation against the
//!   grain auditor's minted-weight measurement.
//! - [`prof`]: the hierarchical phase profiler — RAII [`SpanGuard`]s over
//!   a static [`Phase`] taxonomy accumulate exact per-thread self/total
//!   time trees behind a zero-cost [`Profiler`] handle, snapshotted into
//!   a [`ProfileReport`] whose accounting identities (`busy == Σ self`,
//!   `busy + idle_wait == lifetime`) hold exactly; exports collapsed
//!   stacks for flamegraphs, JSON, and `distclass_phase_us` registry
//!   families.

pub mod analyze;
pub mod byz;
pub mod causal;
pub mod dynrep;
pub mod event;
pub mod json;
pub mod live;
pub mod metrics;
pub mod prof;
pub mod prom;
pub mod sink;
pub mod telemetry;

pub use analyze::{AnalyzeOptions, Anomaly, TraceReport};
pub use byz::{ByzAnomaly, ByzReport};
pub use causal::{
    CausalAnomaly, CausalReport, CriticalHop, CriticalPath, InfluenceMatrix, NodeProvenance, SpanId,
};
pub use dynrep::{ChurnRecord, DynAnomaly, DynOptions, DynReport, Staleness};
pub use event::{DropReason, GrainOp, TraceEvent};
pub use json::{Json, JsonError};
pub use live::{EpisodeRule, Health, Live, LiveAggregator, LiveConsole};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, MetricValue, Metrics,
    MetricsRegistry, RegistrySnapshot,
};
pub use prof::{
    CollapsedStack, Phase, PhaseStat, ProfileReport, Profiler, ProfilerCore, SpanGuard, SpanStat,
    ThreadProfile, ThreadProfiler,
};
pub use sink::{JsonlSink, NullSink, RingSink, TeeSink, TraceSink, Tracer};
pub use telemetry::{Episode, TelemetrySample, TelemetrySeries};
