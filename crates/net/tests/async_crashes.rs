//! Crash faults under full asynchrony: exponential-hazard fail-stop
//! crashes in the event engine.

use distclass_net::{Context, EventEngine, NodeId, Protocol, Topology};

struct Counter {
    sent: u64,
    received: u64,
}

impl Protocol for Counter {
    type Message = ();

    fn on_tick(&mut self, ctx: &mut Context<'_, ()>) {
        let to = ctx.random_neighbor();
        self.sent += 1;
        ctx.send(to, ());
    }

    fn on_message(&mut self, _from: NodeId, _msg: (), _ctx: &mut Context<'_, ()>) {
        self.received += 1;
    }
}

fn engine(rate: f64) -> EventEngine<Counter> {
    EventEngine::new(Topology::complete(30), 11, |_| Counter {
        sent: 0,
        received: 0,
    })
    .with_crash_rate(rate)
}

#[test]
fn crashes_thin_the_network_over_time() {
    let mut e = engine(0.02);
    e.run_until(20.0);
    let mid = e.live_nodes().len();
    e.run_until(100.0);
    let end = e.live_nodes().len();
    assert!(mid < 30, "no crashes by t=20");
    assert!(end < mid, "no further crashes by t=100");
    assert!(end >= 1, "all nodes died");
    assert_eq!(e.metrics().crashes as usize, 30 - end);
}

#[test]
fn messages_to_crashed_nodes_are_dropped_not_lost_track_of() {
    let mut e = engine(0.05);
    e.run_until(60.0);
    e.drain_in_flight(1_000_000);
    let m = e.metrics();
    assert_eq!(m.messages_sent, m.messages_delivered + m.messages_dropped);
    assert!(m.messages_dropped > 0, "expected some drops");
}

#[test]
fn crashed_nodes_freeze() {
    let mut e = engine(0.05);
    e.run_until(40.0);
    let snapshot: Vec<(u64, u64)> = e.nodes().iter().map(|c| (c.sent, c.received)).collect();
    let dead: Vec<usize> = (0..30).filter(|&i| !e.is_alive(i)).collect();
    assert!(!dead.is_empty());
    e.run_until(80.0);
    for &i in &dead {
        let c = e.node(i);
        assert_eq!((c.sent, c.received), snapshot[i], "dead node {i} acted");
    }
}

#[test]
fn failure_detector_steers_traffic_to_survivors() {
    // With the always-on liveness view in Context, live senders should
    // rarely waste messages on dead peers: only those already in flight
    // when the recipient crashes are lost. The claim only holds while a
    // sender has at least one live neighbor — once a single survivor
    // remains, every one of its sends necessarily targets a dead peer —
    // so stop each run while the population is still healthy, and
    // aggregate several seeds so the bound tests the steering dynamics
    // rather than one RNG stream.
    let (mut dropped, mut sent) = (0u64, 0u64);
    for seed in 11..15u64 {
        let mut e = EventEngine::new(Topology::complete(30), seed, |_| Counter {
            sent: 0,
            received: 0,
        })
        .with_crash_rate(0.05);
        let mut t = 0.0;
        while e.live_nodes().len() > 5 && t < 200.0 {
            t += 1.0;
            e.run_until(t);
        }
        dropped += e.metrics().messages_dropped;
        sent += e.metrics().messages_sent;
    }
    assert!(
        (dropped as f64) < 0.10 * sent as f64,
        "too many drops: {dropped} of {sent}"
    );
}

#[test]
#[should_panic(expected = "crash rate must be positive")]
fn rejects_nonpositive_rate() {
    let _ = engine(0.0);
}

mod link_delays {
    use distclass_net::{Context, DelayModel, EventEngine, NodeId, Protocol, Topology};

    struct Ping {
        received_at: Vec<f64>,
        clock: f64,
    }

    impl Protocol for Ping {
        type Message = ();

        fn on_tick(&mut self, ctx: &mut Context<'_, ()>) {
            self.clock = ctx.round() as f64;
            let to = ctx.random_neighbor();
            ctx.send(to, ());
        }

        fn on_message(&mut self, _from: NodeId, _msg: (), ctx: &mut Context<'_, ()>) {
            self.received_at.push(ctx.round() as f64);
        }
    }

    #[test]
    fn slow_links_delay_delivery() {
        // Two nodes, constant base delay 1; the link factor makes every
        // message take 6 time units. Nothing can be delivered before t=6.
        let build = |factor: f64| {
            let mut e = EventEngine::with_timing(
                Topology::ring(2),
                4,
                1.0,
                DelayModel::Constant(1.0),
                |_| Ping {
                    received_at: Vec::new(),
                    clock: 0.0,
                },
            )
            .with_link_delay_factors(move |_, _| factor);
            e.run_until(5.0);
            e.metrics().messages_delivered
        };
        assert!(build(1.0) > 0, "fast links deliver within 5 time units");
        assert_eq!(build(6.0), 0, "slow links must not deliver before t=6");
    }

    #[test]
    fn distance_scaled_delays_still_converge() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        struct MaxGossip(u64);
        impl Protocol for MaxGossip {
            type Message = u64;
            fn on_tick(&mut self, ctx: &mut Context<'_, u64>) {
                let to = ctx.random_neighbor();
                ctx.send(to, self.0);
            }
            fn on_message(&mut self, _f: NodeId, m: u64, _c: &mut Context<'_, u64>) {
                self.0 = self.0.max(m);
            }
        }

        let mut rng = StdRng::seed_from_u64(6);
        let (topo, pos) = Topology::random_geometric(25, 0.5, &mut rng).expect("connected RGG");
        let mut engine = EventEngine::with_timing(
            topo,
            6,
            1.0,
            DelayModel::Uniform { min: 0.1, max: 0.5 },
            |i| MaxGossip(i as u64),
        )
        .with_link_delay_factors(move |a, b| {
            let dx = pos[a].0 - pos[b].0;
            let dy = pos[a].1 - pos[b].1;
            // Latency proportional to radio distance, floored.
            1.0 + 10.0 * (dx * dx + dy * dy).sqrt()
        });
        engine.run_until(400.0);
        assert!(engine.nodes().iter().all(|n| n.0 == 24));
    }
}
