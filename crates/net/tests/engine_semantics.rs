//! Engine-semantics tests: reliability (no loss, no duplication), fairness
//! of neighbor selection, determinism, and round phasing.

use distclass_net::{Context, CrashModel, EventEngine, NodeId, Protocol, RoundEngine, Topology};

/// Records everything that happens to it.
#[derive(Default)]
struct Recorder {
    sent: Vec<(NodeId, u64)>,
    received: Vec<(NodeId, u64)>,
    ticks: u64,
    round_ends: u64,
    counter: u64,
}

impl Protocol for Recorder {
    type Message = u64;

    fn on_tick(&mut self, ctx: &mut Context<'_, u64>) {
        let to = ctx.round_robin_neighbor();
        let tag = (ctx.id() as u64) << 32 | self.counter;
        self.counter += 1;
        self.ticks += 1;
        self.sent.push((to, tag));
        ctx.send(to, tag);
    }

    fn on_message(&mut self, from: NodeId, msg: u64, _ctx: &mut Context<'_, u64>) {
        self.received.push((from, msg));
    }

    fn on_round_end(&mut self, _ctx: &mut Context<'_, u64>) {
        self.round_ends += 1;
    }
}

fn recorder_engine(topo: Topology) -> RoundEngine<Recorder> {
    RoundEngine::new(topo, 7, |_| Recorder::default())
}

#[test]
fn every_sent_message_is_delivered_exactly_once() {
    let mut engine = recorder_engine(Topology::complete(6));
    engine.run_rounds(10);
    let mut all_sent: Vec<u64> = engine
        .nodes()
        .iter()
        .flat_map(|r| r.sent.iter().map(|&(_, tag)| tag))
        .collect();
    let mut all_received: Vec<u64> = engine
        .nodes()
        .iter()
        .flat_map(|r| r.received.iter().map(|&(_, tag)| tag))
        .collect();
    all_sent.sort_unstable();
    all_received.sort_unstable();
    assert_eq!(all_sent, all_received);
    // No duplicates either.
    let before = all_received.len();
    all_received.dedup();
    assert_eq!(before, all_received.len());
}

#[test]
fn sender_identity_is_faithful() {
    let mut engine = recorder_engine(Topology::ring(5));
    engine.run_rounds(6);
    for recorder in engine.nodes() {
        for &(from, tag) in &recorder.received {
            assert_eq!((tag >> 32) as usize, from, "forged sender");
        }
    }
}

#[test]
fn round_robin_selection_is_fair_over_full_cycles() {
    // After deg × m rounds every neighbor has been chosen exactly m times.
    let mut engine = recorder_engine(Topology::complete(5));
    engine.run_rounds(12); // degree 4 × 3 cycles
    for (i, recorder) in engine.nodes().iter().enumerate() {
        let mut counts = std::collections::HashMap::new();
        for &(to, _) in &recorder.sent {
            *counts.entry(to).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len(), 4, "node {i} skipped a neighbor");
        assert!(
            counts.values().all(|&c| c == 3),
            "node {i} uneven selection: {counts:?}"
        );
    }
}

#[test]
fn ticks_and_round_ends_fire_once_per_round() {
    let mut engine = recorder_engine(Topology::ring(4));
    engine.run_rounds(9);
    for r in engine.nodes() {
        assert_eq!(r.ticks, 9);
        assert_eq!(r.round_ends, 9);
    }
}

#[test]
fn crashed_nodes_stop_participating() {
    let mut engine = recorder_engine(Topology::complete(4))
        .with_crash_model(CrashModel::Scheduled(vec![(2, 1)]));
    engine.run_rounds(8);
    let victim = engine.node(1);
    // Node 1 ticked only in rounds 0..=2 (crash applies at end of round 2).
    assert_eq!(victim.ticks, 3);
    // And received nothing after its crash: every delivery to it happened
    // in rounds 0..=2, i.e. at most 3 rounds' worth from 3 senders.
    assert!(victim.received.len() <= 9);
}

#[test]
fn event_engine_is_reliable_too() {
    struct Echo {
        received: Vec<u64>,
    }
    impl Protocol for Echo {
        type Message = u64;
        fn on_tick(&mut self, ctx: &mut Context<'_, u64>) {
            let to = ctx.random_neighbor();
            ctx.send(to, ctx.id() as u64);
        }
        fn on_message(&mut self, _from: NodeId, msg: u64, _ctx: &mut Context<'_, u64>) {
            self.received.push(msg);
        }
    }
    let mut engine = EventEngine::new(Topology::complete(5), 3, |_| Echo {
        received: Vec::new(),
    });
    engine.run_until(50.0);
    engine.drain_in_flight(100_000);
    let m = engine.metrics();
    assert_eq!(m.messages_sent, m.messages_delivered);
    let total_received: usize = engine.nodes().iter().map(|e| e.received.len()).sum();
    assert_eq!(total_received as u64, m.messages_delivered);
}

#[test]
fn engines_are_deterministic_but_seed_sensitive() {
    let run = |seed: u64| {
        let mut engine = RoundEngine::new(Topology::complete(6), seed, |_| Recorder::default());
        engine.run_rounds(5);
        engine
            .nodes()
            .iter()
            .map(|r| r.received.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(1));
    // Round-robin cursors derive from the seed, so traffic differs.
    assert_ne!(run(1), run(2));
}
