use distclass_obs::{
    Counter, DropReason, Histogram, Metrics, Phase, ThreadProfiler, TraceEvent, Tracer,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{Context, Protocol};
use crate::faults::CrashModel;
use crate::metrics::NetMetrics;
use crate::rng::derive_seed;
use crate::topology::Topology;
use crate::NodeId;

/// Synchronous round-based simulation engine.
///
/// Reproduces the paper's evaluation methodology (§5.3): “we measure
/// progress in rounds, where in each round each node sends a classification
/// to one neighbor”. A round consists of:
///
/// 1. every live node's [`Protocol::on_tick`] runs (in node order) and its
///    outgoing messages are collected;
/// 2. all collected messages are delivered via [`Protocol::on_message`]
///    (messages sent while handling a delivery are carried into the next
///    round — links are reliable but asynchronous);
/// 3. every live node's [`Protocol::on_round_end`] runs;
/// 4. crash faults are applied per the configured [`CrashModel`].
///
/// The engine is deterministic given the construction seed.
///
/// See the crate-level docs for a complete example.
#[derive(Debug)]
pub struct RoundEngine<P: Protocol> {
    topo: Topology,
    nodes: Vec<P>,
    alive: Vec<bool>,
    rr_cursors: Vec<usize>,
    node_rngs: Vec<StdRng>,
    crash_rng: StdRng,
    crash: CrashModel,
    failure_detector: bool,
    // Messages sent during the delivery phase, carried into the next
    // round. Each carries its causal identity: the per-sender sequence
    // number (the span id is `(from, seq)`) and the sender's Lamport
    // stamp at send time.
    carried: Vec<(NodeId, NodeId, u64, u64, P::Message)>,
    round: u64,
    /// Per-node Lamport clocks: bumped on every send, folded with
    /// `max(local, sender) + 1` on every delivery.
    lamport: Vec<u64>,
    /// Per-node send counters; one span id `(from, seq)` per send.
    send_seq: Vec<u64>,
    metrics: NetMetrics,
    sizer: Option<fn(&P::Message) -> usize>,
    tracer: Tracer,
    instruments: Option<EngineInstruments>,
    prof: ThreadProfiler,
}

/// Registry handles minted once at attach time so the per-round cost is
/// a few atomic writes (plus two `Instant` reads for the timings).
struct EngineInstruments {
    round_ns: Histogram,
    merge_phase_ns: Histogram,
    sent: Counter,
    delivered: Counter,
    dropped: Counter,
}

impl std::fmt::Debug for EngineInstruments {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EngineInstruments")
    }
}

impl<P: Protocol> RoundEngine<P> {
    /// Creates an engine over `topo`; `init(i)` builds node `i`'s protocol
    /// state. Deterministic in `seed`.
    pub fn new(topo: Topology, seed: u64, init: impl FnMut(NodeId) -> P) -> Self {
        let n = topo.len();
        let nodes: Vec<P> = (0..n).map(init).collect();
        // Round-robin cursors start at per-node offsets: with a common
        // start, structured topologies (e.g. complete graphs with sorted
        // neighbor lists) would aim every node at the same recipient each
        // round, starving everyone else for the first `degree` rounds.
        let rr_cursors = (0..n)
            .map(|i| {
                let deg = topo.degree(i).max(1);
                (derive_seed(seed, 0x5EED ^ i as u64) % deg as u64) as usize
            })
            .collect();
        RoundEngine {
            topo,
            nodes,
            alive: vec![true; n],
            rr_cursors,
            node_rngs: (0..n)
                .map(|i| StdRng::seed_from_u64(derive_seed(seed, i as u64)))
                .collect(),
            crash_rng: StdRng::seed_from_u64(derive_seed(seed, n as u64 + 1)),
            crash: CrashModel::None,
            failure_detector: true,
            carried: Vec::new(),
            round: 0,
            lamport: vec![0; n],
            send_seq: vec![0; n],
            metrics: NetMetrics::default(),
            sizer: None,
            tracer: Tracer::disabled(),
            instruments: None,
            prof: ThreadProfiler::disabled(),
        }
    }

    /// Attaches a phase-profiler thread handle (builder style): each
    /// round runs under a `tick` span with the round-end merge/EM
    /// reduction nested as `em_reduce`. When a metrics registry is also
    /// attached, the registry round histograms are fed from the *same*
    /// measurements, so profile and registry views reconcile exactly. A
    /// disabled handle (the default) never reads the clock.
    pub fn with_profiler(mut self, prof: ThreadProfiler) -> Self {
        self.prof = prof;
        self
    }

    /// Sets the crash model (builder style).
    pub fn with_crash_model(mut self, crash: CrashModel) -> Self {
        self.crash = crash;
        self
    }

    /// Installs a message sizer (builder style): every sent and delivered
    /// message is priced at `sizer(&msg)` wire bytes and accumulated in
    /// [`NetMetrics::bytes_sent`] / [`NetMetrics::bytes_delivered`], so
    /// simulations report the byte costs a deployment would pay.
    pub fn with_message_sizer(mut self, sizer: fn(&P::Message) -> usize) -> Self {
        self.sizer = Some(sizer);
        self
    }

    /// Attaches a trace sink (builder style). A disabled tracer (the
    /// default) costs one branch per message and never builds events.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches a metrics registry handle (builder style): per-round wall
    /// time (`distclass_round_ns`), the merge/EM-reduction phase time
    /// (`distclass_merge_phase_ns`), and message-fate counters. A
    /// disabled [`Metrics`] (the default) leaves the hot path untouched.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.instruments = metrics.enabled().then(|| EngineInstruments {
            round_ns: metrics.histogram(
                "distclass_round_ns",
                "wall time of one synchronous round",
                &[],
            ),
            merge_phase_ns: metrics.histogram(
                "distclass_merge_phase_ns",
                "wall time of the round-end merge/EM-reduction phase",
                &[],
            ),
            sent: metrics.counter(
                "distclass_messages_total",
                "message fates",
                &[("fate", "sent")],
            ),
            delivered: metrics.counter(
                "distclass_messages_total",
                "message fates",
                &[("fate", "delivered")],
            ),
            dropped: metrics.counter(
                "distclass_messages_total",
                "message fates",
                &[("fate", "dropped")],
            ),
        });
        self
    }

    /// Accounts for one send and mints its causal identity: the span id's
    /// sequence number and the sender's post-bump Lamport stamp.
    fn record_sent(&mut self, from: NodeId, to: NodeId, msg: &P::Message) -> (u64, u64) {
        self.metrics.messages_sent += 1;
        let mut bytes = 0u64;
        if let Some(sizer) = self.sizer {
            bytes = sizer(msg) as u64;
            self.metrics.bytes_sent += bytes;
        }
        if let Some(ins) = &self.instruments {
            ins.sent.inc();
        }
        self.send_seq[from] += 1;
        self.lamport[from] += 1;
        let (seq, lamport) = (self.send_seq[from], self.lamport[from]);
        let at = self.round as f64;
        self.tracer.emit(|| TraceEvent::MessageSent {
            from,
            to,
            bytes,
            at,
            lamport: Some(lamport),
            seq: Some(seq),
        });
        (seq, lamport)
    }

    /// Enables or disables the perfect failure detector (builder style).
    ///
    /// When enabled (the default), neighbor selection skips crashed nodes —
    /// the behavior a deployed gossip stack gets from its membership layer.
    /// When disabled, nodes keep addressing crashed neighbors and those
    /// messages are dropped; on fault-heavy runs this starves survivors,
    /// whose weights then collapse to the quantum (see the ablation bench).
    pub fn with_failure_detector(mut self, enabled: bool) -> Self {
        self.failure_detector = enabled;
        self
    }

    /// The engine's profiler thread handle — for wrappers (like the
    /// gossip runner) that span work outside [`RoundEngine::run_round`]
    /// on the same thread tree.
    pub fn profiler(&self) -> &ThreadProfiler {
        &self.prof
    }

    /// The topology the engine runs over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// All node protocol states (including crashed nodes).
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Node `i`'s protocol state.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: NodeId) -> &P {
        &self.nodes[i]
    }

    /// Mutable access to node `i`'s protocol state (for test setup).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node_mut(&mut self, i: NodeId) -> &mut P {
        &mut self.nodes[i]
    }

    /// Whether node `i` is still live.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_alive(&self, i: NodeId) -> bool {
        self.alive[i]
    }

    /// Ids of all live nodes.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).filter(|&i| self.alive[i]).collect()
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> NetMetrics {
        self.metrics
    }

    /// Messages currently in flight at a round boundary (sent during the
    /// previous delivery phase, to be delivered next round) — needed for
    /// exact conservation accounting with reply-based protocols.
    pub fn in_flight_messages(&self) -> impl Iterator<Item = &P::Message> {
        self.carried.iter().map(|(_, _, _, _, m)| m)
    }

    /// Whether an active partition window cuts the `from → to` link in
    /// the current round: some window covers the round and puts the two
    /// endpoints on opposite sides.
    fn partitioned(&self, from: NodeId, to: NodeId) -> bool {
        let CrashModel::Partition { windows } = &self.crash else {
            return false;
        };
        windows.iter().any(|(start, until, side)| {
            (*start..*until).contains(&self.round) && (side.contains(&from) != side.contains(&to))
        })
    }

    /// Runs a single round.
    pub fn run_round(&mut self) {
        // The span guards borrow the thread handle, so it moves to a
        // local for the duration of the round (a guard can't borrow a
        // field of `self` across the `&mut self` helper calls below).
        let prof = std::mem::replace(&mut self.prof, ThreadProfiler::disabled());
        let round_span = prof.span_timed(Phase::Tick, self.instruments.is_some());
        self.apply_restarts();
        let n = self.nodes.len();
        // Phase 1: ticks.
        let mut pending: Vec<(NodeId, NodeId, u64, u64, P::Message)> =
            std::mem::take(&mut self.carried);
        let mut outbox = Vec::new();
        for i in 0..n {
            if !self.alive[i] {
                continue;
            }
            let mut ctx = Context::new(
                i,
                self.topo.neighbors(i),
                &mut self.rr_cursors[i],
                &mut self.node_rngs[i],
                &mut outbox,
                self.round,
            );
            if self.failure_detector {
                ctx = ctx.with_alive(&self.alive);
            }
            self.nodes[i].on_tick(&mut ctx);
            self.metrics.ticks += 1;
            for (to, msg) in outbox.drain(..) {
                let (seq, lamport) = self.record_sent(i, to, &msg);
                pending.push((i, to, seq, lamport, msg));
            }
        }

        // Phase 2: deliveries. Sends from handlers go to the next round.
        for (from, to, seq, send_lamport, msg) in pending {
            if !self.alive[to] || self.partitioned(from, to) {
                let reason = if self.alive[to] {
                    DropReason::Partitioned
                } else {
                    DropReason::Crashed
                };
                self.metrics.messages_dropped += 1;
                if let Some(ins) = &self.instruments {
                    ins.dropped.inc();
                }
                self.tracer
                    .emit(|| TraceEvent::MessageDropped { from, to, reason });
                continue;
            }
            let mut ctx = Context::new(
                to,
                self.topo.neighbors(to),
                &mut self.rr_cursors[to],
                &mut self.node_rngs[to],
                &mut outbox,
                self.round,
            );
            if self.failure_detector {
                ctx = ctx.with_alive(&self.alive);
            }
            let mut bytes = 0u64;
            if let Some(sizer) = self.sizer {
                bytes = sizer(&msg) as u64;
                self.metrics.bytes_delivered += bytes;
            }
            self.nodes[to].on_message(from, msg, &mut ctx);
            self.metrics.messages_delivered += 1;
            if let Some(ins) = &self.instruments {
                ins.delivered.inc();
            }
            // Lamport receive rule, then stamp the delivery with the
            // receiver's new clock and the send's span id.
            self.lamport[to] = self.lamport[to].max(send_lamport) + 1;
            let lamport = self.lamport[to];
            let at = self.round as f64;
            self.tracer.emit(|| TraceEvent::MessageDelivered {
                from,
                to,
                bytes,
                at,
                lamport: Some(lamport),
                span_seq: Some(seq),
            });
            for (nto, nmsg) in outbox.drain(..) {
                let (nseq, nlamport) = self.record_sent(to, nto, &nmsg);
                self.carried.push((to, nto, nseq, nlamport, nmsg));
            }
        }

        // Phase 3: round end (where the protocol merges received halves
        // and runs its EM-style reduction).
        let merge_span = prof.span_timed(Phase::EmReduce, self.instruments.is_some());
        for i in 0..n {
            if !self.alive[i] {
                continue;
            }
            let mut ctx = Context::new(
                i,
                self.topo.neighbors(i),
                &mut self.rr_cursors[i],
                &mut self.node_rngs[i],
                &mut outbox,
                self.round,
            );
            if self.failure_detector {
                ctx = ctx.with_alive(&self.alive);
            }
            self.nodes[i].on_round_end(&mut ctx);
            for (to, msg) in outbox.drain(..) {
                let (seq, lamport) = self.record_sent(i, to, &msg);
                self.carried.push((i, to, seq, lamport, msg));
            }
        }

        let merge_ns = merge_span.stop();
        if let (Some(ins), Some(ns)) = (&self.instruments, merge_ns) {
            ins.merge_phase_ns.observe(ns);
        }

        // Phase 4: crash faults.
        self.apply_crashes();

        let round_ns = round_span.stop();
        if let (Some(ins), Some(ns)) = (&self.instruments, round_ns) {
            ins.round_ns.observe(ns);
        }
        self.prof = prof;
        self.round += 1;
        self.metrics.rounds += 1;
        if self.tracer.enabled() {
            let live = self.live_count();
            let m = self.metrics;
            self.tracer.emit(|| TraceEvent::RoundCompleted {
                round: self.round - 1,
                live,
                sent: m.messages_sent,
                delivered: m.messages_delivered,
                dropped: m.messages_dropped,
            });
        }
    }

    /// Runs `rounds` rounds.
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.run_round();
        }
    }

    /// Runs rounds until `stop(self)` returns `true` or `max_rounds` is
    /// reached; returns the number of rounds executed.
    pub fn run_until(&mut self, max_rounds: u64, mut stop: impl FnMut(&Self) -> bool) -> u64 {
        let start = self.round;
        while self.round - start < max_rounds && !stop(self) {
            self.run_round();
        }
        self.round - start
    }

    fn apply_crashes(&mut self) {
        match &self.crash {
            CrashModel::None => {}
            CrashModel::PerRound { prob } => {
                let prob = *prob;
                let n = self.nodes.len();
                for i in 0..n {
                    if self.alive[i] && self.live_count() > 1 && self.crash_rng.gen::<f64>() < prob
                    {
                        self.alive[i] = false;
                        self.metrics.crashes += 1;
                        let round = self.round;
                        self.tracer.emit(|| TraceEvent::FaultActivated {
                            kind: "crash".to_string(),
                            node: Some(i),
                            at: round as f64,
                        });
                    }
                }
            }
            CrashModel::Scheduled(plan) => {
                let round = self.round;
                let to_crash: Vec<NodeId> = plan
                    .iter()
                    .filter(|(r, _)| *r == round)
                    .map(|&(_, node)| node)
                    .collect();
                for node in to_crash {
                    if node < self.alive.len() && self.alive[node] && self.live_count() > 1 {
                        self.alive[node] = false;
                        self.metrics.crashes += 1;
                        self.tracer.emit(|| TraceEvent::FaultActivated {
                            kind: "crash".to_string(),
                            node: Some(node),
                            at: round as f64,
                        });
                    }
                }
            }
            CrashModel::CrashRestart { schedule } => {
                let round = self.round;
                let to_crash: Vec<NodeId> = schedule
                    .iter()
                    .filter(|(r, _, _)| *r == round)
                    .map(|&(_, _, node)| node)
                    .collect();
                for node in to_crash {
                    if node < self.alive.len() && self.alive[node] && self.live_count() > 1 {
                        self.alive[node] = false;
                        self.metrics.crashes += 1;
                        self.tracer.emit(|| TraceEvent::FaultActivated {
                            kind: "crash".to_string(),
                            node: Some(node),
                            at: round as f64,
                        });
                    }
                }
            }
            CrashModel::Partition { .. } => {} // applied per-delivery
        }
    }

    /// Revives nodes whose `CrashRestart` schedule restarts them at the
    /// start of the current round. The node resumes with the protocol
    /// state it crashed holding — messages sent to it while down are gone
    /// (they were dropped, as §3.1's fail-stop model prescribes).
    fn apply_restarts(&mut self) {
        let CrashModel::CrashRestart { schedule } = &self.crash else {
            return;
        };
        let round = self.round;
        let to_restart: Vec<NodeId> = schedule
            .iter()
            .filter(|(_, r, _)| *r == Some(round))
            .map(|&(_, _, node)| node)
            .collect();
        for node in to_restart {
            if node < self.alive.len() && !self.alive[node] {
                self.alive[node] = true;
                self.metrics.restarts += 1;
                self.tracer.emit(|| TraceEvent::FaultHealed {
                    kind: "crash".to_string(),
                    node: Some(node),
                    at: round as f64,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Floods the maximum value seen so far to every neighbor.
    struct Flood {
        value: u64,
        received: Vec<u64>,
        batch_runs: u64,
    }

    impl Protocol for Flood {
        type Message = u64;

        fn on_tick(&mut self, ctx: &mut Context<'_, u64>) {
            let to = ctx.round_robin_neighbor();
            ctx.send(to, self.value);
        }

        fn on_message(&mut self, _from: NodeId, msg: u64, _ctx: &mut Context<'_, u64>) {
            self.received.push(msg);
        }

        fn on_round_end(&mut self, _ctx: &mut Context<'_, u64>) {
            self.batch_runs += 1;
            for m in self.received.drain(..) {
                if m > self.value {
                    self.value = m;
                }
            }
        }
    }

    fn flood_engine(topo: Topology) -> RoundEngine<Flood> {
        RoundEngine::new(topo, 9, |i| Flood {
            value: i as u64,
            received: Vec::new(),
            batch_runs: 0,
        })
    }

    #[test]
    fn max_floods_over_ring() {
        let mut engine = flood_engine(Topology::ring(10));
        engine.run_rounds(25);
        assert!(engine.nodes().iter().all(|n| n.value == 9));
    }

    #[test]
    fn max_floods_over_complete_quickly() {
        let mut engine = flood_engine(Topology::complete(20));
        let rounds = engine.run_until(100, |e| e.nodes().iter().all(|n| n.value == 19));
        assert!(rounds <= 20, "took {rounds} rounds");
    }

    #[test]
    fn round_end_called_once_per_round_per_node() {
        let mut engine = flood_engine(Topology::ring(4));
        engine.run_rounds(3);
        assert!(engine.nodes().iter().all(|n| n.batch_runs == 3));
    }

    #[test]
    fn metrics_track_messages() {
        let mut engine = flood_engine(Topology::ring(4));
        engine.run_rounds(2);
        let m = engine.metrics();
        assert_eq!(m.messages_sent, 8);
        assert_eq!(m.messages_delivered, 8);
        assert_eq!(m.in_flight(), 0);
        assert_eq!(m.rounds, 2);
        assert_eq!(m.ticks, 8);
    }

    #[test]
    fn per_round_crashes_thin_the_network() {
        let mut engine =
            flood_engine(Topology::complete(50)).with_crash_model(CrashModel::per_round(0.2));
        engine.run_rounds(10);
        let live = engine.live_count();
        assert!(live < 50, "nobody crashed");
        assert!(live >= 1);
        assert_eq!(engine.metrics().crashes as usize, 50 - live);
    }

    #[test]
    fn crashed_nodes_drop_messages() {
        // Without a failure detector, senders keep addressing the crashed
        // nodes and those messages are dropped.
        let mut engine = flood_engine(Topology::complete(10))
            .with_crash_model(CrashModel::Scheduled(vec![(0, 3), (0, 4)]))
            .with_failure_detector(false);
        engine.run_rounds(5);
        assert!(!engine.is_alive(3));
        assert!(!engine.is_alive(4));
        assert!(engine.metrics().messages_dropped > 0);
        assert_eq!(engine.live_count(), 8);
    }

    #[test]
    fn scheduled_crash_never_kills_last_node() {
        let plan: Vec<(u64, NodeId)> = (0..2).map(|i| (0, i)).collect();
        let mut engine =
            flood_engine(Topology::ring(2)).with_crash_model(CrashModel::Scheduled(plan));
        engine.run_rounds(1);
        assert_eq!(engine.live_count(), 1);
    }

    #[test]
    fn crash_restart_revives_node_with_retained_state() {
        // Node 0 crashes at the end of round 2 and returns at the start
        // of round 8: while down its state freezes (it neither ticks nor
        // receives); once revived it rejoins the flood and catches up.
        let mut engine =
            flood_engine(Topology::complete(10)).with_crash_model(CrashModel::CrashRestart {
                schedule: vec![(2, Some(8), 0)],
            });
        engine.run_rounds(4);
        assert!(!engine.is_alive(0));
        let frozen = engine.node(0).value;
        engine.run_rounds(2);
        assert_eq!(engine.node(0).value, frozen, "down nodes receive nothing");
        engine.run_rounds(12);
        assert!(engine.is_alive(0));
        assert_eq!(engine.metrics().crashes, 1);
        assert_eq!(engine.metrics().restarts, 1);
        assert!(
            engine.nodes().iter().all(|n| n.value == 9),
            "revived node caught up"
        );
    }

    #[test]
    fn crash_restart_with_none_is_permanent() {
        let mut engine =
            flood_engine(Topology::ring(4)).with_crash_model(CrashModel::CrashRestart {
                schedule: vec![(1, None, 2)],
            });
        engine.run_rounds(10);
        assert!(!engine.is_alive(2));
        assert_eq!(engine.metrics().restarts, 0);
    }

    #[test]
    fn partition_window_cuts_cross_links_then_heals() {
        // Split {0,1} from {2,3} on a complete graph for rounds 0..8:
        // the max (3) cannot reach side {0,1} until the heal.
        let mut engine =
            flood_engine(Topology::complete(4)).with_crash_model(CrashModel::Partition {
                windows: vec![(0, 8, vec![0, 1])],
            });
        engine.run_rounds(8);
        assert!(engine.nodes()[0].value <= 1, "partition leaked");
        assert!(engine.nodes()[1].value <= 1, "partition leaked");
        assert!(engine.metrics().messages_dropped > 0);
        engine.run_rounds(10);
        assert!(engine.nodes().iter().all(|n| n.value == 3));
        assert_eq!(engine.live_count(), 4, "partition never kills anyone");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut e = RoundEngine::new(Topology::complete(8), seed, |i| Flood {
                value: i as u64,
                received: Vec::new(),
                batch_runs: 0,
            })
            .with_crash_model(CrashModel::per_round(0.1));
            e.run_rounds(10);
            (e.live_nodes(), e.metrics())
        };
        assert_eq!(run(5), run(5));
        // Different seeds should (overwhelmingly) differ in crash pattern.
        assert_ne!(run(5).0, run(6).0);
    }
    #[test]
    fn registry_counters_match_engine_metrics() {
        use distclass_obs::{MetricValue, MetricsRegistry};
        use std::sync::Arc;

        let registry = Arc::new(MetricsRegistry::new());
        let mut engine = flood_engine(Topology::complete(10))
            .with_crash_model(CrashModel::Scheduled(vec![(0, 3)]))
            .with_failure_detector(false)
            .with_metrics(Metrics::new(Arc::clone(&registry)));
        engine.run_rounds(5);
        let m = engine.metrics();

        let snap = registry.snapshot();
        let fate = |want: &str| {
            snap.families
                .iter()
                .find(|f| f.name == "distclass_messages_total")
                .and_then(|f| {
                    f.series
                        .iter()
                        .find(|s| s.labels.iter().any(|(_, v)| v == want))
                })
                .map(|s| match &s.value {
                    MetricValue::Counter(v) => *v,
                    other => panic!("wrong kind {other:?}"),
                })
                .expect("series exists")
        };
        assert_eq!(fate("sent"), m.messages_sent);
        assert_eq!(fate("delivered"), m.messages_delivered);
        assert_eq!(fate("dropped"), m.messages_dropped);
        let rounds = snap
            .families
            .iter()
            .find(|f| f.name == "distclass_round_ns")
            .expect("round timing family");
        match &rounds.series[0].value {
            MetricValue::Histogram(h) => assert_eq!(h.count, 5, "one sample per round"),
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn profiler_nests_em_reduce_under_tick_and_feeds_round_ns() {
        use distclass_obs::{MetricValue, MetricsRegistry, Phase, Profiler, ProfilerCore};
        use std::sync::Arc;

        let registry = Arc::new(MetricsRegistry::new());
        let core = Arc::new(ProfilerCore::new());
        let prof = Profiler::new(Arc::clone(&core));
        let mut engine = flood_engine(Topology::ring(6))
            .with_metrics(Metrics::new(Arc::clone(&registry)))
            .with_profiler(prof.thread("engine"));
        engine.run_rounds(4);
        drop(engine); // finalizes the thread's books

        let report = core.snapshot();
        assert!(report.clean(), "anomalies: {:?}", report.anomalies());
        let t = &report.threads[0];
        assert_eq!(t.label, "engine");
        let tick = t
            .spans
            .iter()
            .find(|s| s.path == [Phase::Tick])
            .expect("whole-round tick span");
        assert_eq!(tick.count, 4, "one tick span per round");
        let em = t
            .spans
            .iter()
            .find(|s| s.path == [Phase::Tick, Phase::EmReduce])
            .expect("em_reduce nested under tick");
        assert_eq!(em.count, 4, "one merge phase per round");

        // Same measurement feeds both views: the registry round histogram
        // saw exactly one sample per round too.
        let snap = registry.snapshot();
        let rounds = snap
            .families
            .iter()
            .find(|f| f.name == "distclass_round_ns")
            .expect("round timing family");
        match &rounds.series[0].value {
            MetricValue::Histogram(h) => assert_eq!(h.count, 4),
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn message_sizer_prices_every_send_and_delivery() {
        let run = |sized: bool| {
            let mut e = RoundEngine::new(Topology::ring(6), 2, |i| Flood {
                value: i as u64,
                received: Vec::new(),
                batch_runs: 0,
            });
            if sized {
                e = e.with_message_sizer(|_| 24);
            }
            e.run_rounds(5);
            e.metrics()
        };
        let plain = run(false);
        assert_eq!(plain.bytes_sent, 0);
        assert_eq!(plain.bytes_delivered, 0);
        let sized = run(true);
        assert_eq!(
            sized.messages_sent, plain.messages_sent,
            "sizer is observational"
        );
        assert_eq!(sized.bytes_sent, 24 * sized.messages_sent);
        assert_eq!(sized.bytes_delivered, 24 * sized.messages_delivered);
    }
}
