use std::cmp::Ordering;
use std::collections::BinaryHeap;

use distclass_obs::{DropReason, TraceEvent, Tracer};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{Context, Protocol};
use crate::metrics::NetMetrics;
use crate::rng::derive_seed;
use crate::topology::Topology;
use crate::NodeId;

/// Per-message delay distribution for the asynchronous event engine.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum DelayModel {
    /// Every message takes exactly this long.
    Constant(f64),
    /// Delays drawn uniformly from `[min, max]`.
    Uniform {
        /// Smallest possible delay (must be > 0).
        min: f64,
        /// Largest possible delay.
        max: f64,
    },
    /// Exponentially distributed delays with the given mean (heavy
    /// asynchrony: occasional very slow links).
    Exponential {
        /// Mean delay (must be > 0).
        mean: f64,
    },
}

impl DelayModel {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            DelayModel::Constant(d) => d,
            DelayModel::Uniform { min, max } => rng.gen_range(min..=max),
            DelayModel::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -mean * u.ln()
            }
        }
    }

    fn validate(&self) {
        match *self {
            DelayModel::Constant(d) => assert!(d > 0.0, "delay must be positive"),
            DelayModel::Uniform { min, max } => {
                assert!(min > 0.0 && max >= min, "invalid uniform delay bounds")
            }
            DelayModel::Exponential { mean } => assert!(mean > 0.0, "mean must be positive"),
        }
    }
}

enum EventKind<M> {
    Tick(NodeId),
    Deliver {
        from: NodeId,
        to: NodeId,
        // The message's causal identity: the sender's per-node send
        // counter (span id `(from, span_seq)`) and Lamport stamp.
        span_seq: u64,
        lamport: u64,
        msg: M,
    },
    Crash(NodeId),
    Restart(NodeId),
}

struct Event<M> {
    time: f64,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M> Eq for Event<M> {}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        // total_cmp keeps the heap ordering well-defined even if a NaN
        // delay ever sneaks in (NaN sorts after +inf, i.e. lowest
        // priority here) instead of panicking mid-run.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Fully asynchronous discrete-event simulation engine.
///
/// Nodes tick at jittered intervals; messages experience randomized delays
/// drawn from a [`DelayModel`]. Links are reliable (every message is
/// eventually delivered) but arbitrarily reordered — the exact setting of
/// the paper's convergence theorem. Deterministic given the seed.
///
/// # Example
///
/// ```
/// use distclass_net::{Context, DelayModel, EventEngine, NodeId, Protocol, Topology};
///
/// struct MaxGossip(u64);
/// impl Protocol for MaxGossip {
///     type Message = u64;
///     fn on_tick(&mut self, ctx: &mut Context<'_, u64>) {
///         let to = ctx.random_neighbor();
///         ctx.send(to, self.0);
///     }
///     fn on_message(&mut self, _f: NodeId, m: u64, _c: &mut Context<'_, u64>) {
///         self.0 = self.0.max(m);
///     }
/// }
///
/// let mut engine = EventEngine::new(Topology::ring(6), 1, |i| MaxGossip(i as u64));
/// engine.run_until(200.0);
/// assert!(engine.nodes().iter().all(|n| n.0 == 5));
/// ```
pub struct EventEngine<P: Protocol> {
    topo: Topology,
    nodes: Vec<P>,
    alive: Vec<bool>,
    rr_cursors: Vec<usize>,
    node_rngs: Vec<StdRng>,
    env_rng: StdRng,
    queue: BinaryHeap<Event<P::Message>>,
    seq: u64,
    now: f64,
    tick_interval: f64,
    delay: DelayModel,
    link_factor: Option<Box<dyn Fn(NodeId, NodeId) -> f64>>,
    partitions: Vec<(f64, f64, Vec<NodeId>)>,
    metrics: NetMetrics,
    sizer: Option<fn(&P::Message) -> usize>,
    tracer: Tracer,
    /// Per-node Lamport clocks: bumped on every send, folded with
    /// `max(local, sender) + 1` on every delivery.
    lamport: Vec<u64>,
    /// Per-node send counters minting span ids `(from, seq)`.
    send_seq: Vec<u64>,
}

impl<P: Protocol> EventEngine<P> {
    /// Creates an engine with unit tick interval and uniform delays in
    /// `[0.1, 2.5]` (messages may span multiple tick periods).
    pub fn new(topo: Topology, seed: u64, init: impl FnMut(NodeId) -> P) -> Self {
        Self::with_timing(
            topo,
            seed,
            1.0,
            DelayModel::Uniform { min: 0.1, max: 2.5 },
            init,
        )
    }

    /// Creates an engine with explicit tick interval and delay model.
    ///
    /// # Panics
    ///
    /// Panics if `tick_interval <= 0` or the delay model is invalid.
    pub fn with_timing(
        topo: Topology,
        seed: u64,
        tick_interval: f64,
        delay: DelayModel,
        init: impl FnMut(NodeId) -> P,
    ) -> Self {
        assert!(tick_interval > 0.0, "tick interval must be positive");
        delay.validate();
        let n = topo.len();
        let nodes: Vec<P> = (0..n).map(init).collect();
        // Stagger round-robin cursors (see RoundEngine::new for rationale).
        let rr_cursors = (0..n)
            .map(|i| {
                let deg = topo.degree(i).max(1);
                (derive_seed(seed, 0x5EED ^ i as u64) % deg as u64) as usize
            })
            .collect();
        let mut engine = EventEngine {
            topo,
            nodes,
            alive: vec![true; n],
            rr_cursors,
            node_rngs: (0..n)
                .map(|i| StdRng::seed_from_u64(derive_seed(seed, i as u64)))
                .collect(),
            env_rng: StdRng::seed_from_u64(derive_seed(seed, n as u64 + 7)),
            queue: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            tick_interval,
            delay,
            link_factor: None,
            partitions: Vec::new(),
            metrics: NetMetrics::default(),
            sizer: None,
            tracer: Tracer::disabled(),
            lamport: vec![0; n],
            send_seq: vec![0; n],
        };
        for i in 0..n {
            let offset = engine.env_rng.gen_range(0.0..engine.tick_interval);
            engine.push_event(offset, EventKind::Tick(i));
        }
        engine
    }

    /// Installs per-link delay scaling (builder style): every sampled
    /// message delay from `a` to `b` is multiplied by `factor(a, b)`.
    /// Useful for heterogeneous deployments — e.g. radio links whose
    /// latency grows with physical distance in a random geometric graph.
    ///
    /// The factor function must be positive and deterministic.
    pub fn with_link_delay_factors(
        mut self,
        factor: impl Fn(NodeId, NodeId) -> f64 + 'static,
    ) -> Self {
        self.link_factor = Some(Box::new(factor));
        self
    }

    /// Installs a message sizer (builder style): every sent and delivered
    /// message is priced at `sizer(&msg)` wire bytes and accumulated in
    /// [`NetMetrics::bytes_sent`] / [`NetMetrics::bytes_delivered`].
    pub fn with_message_sizer(mut self, sizer: fn(&P::Message) -> usize) -> Self {
        self.sizer = Some(sizer);
        self
    }

    /// Schedules fail-stop crashes (builder style): each node's crash time
    /// is drawn from an exponential distribution with the given hazard
    /// `rate` (crashes per unit time per node). Crashed nodes stop ticking
    /// and receiving; messages in flight to them are dropped. The engine
    /// never crashes its last live node.
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn with_crash_rate(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "crash rate must be positive");
        let n = self.nodes.len();
        for i in 0..n {
            let u: f64 = self.env_rng.gen_range(f64::EPSILON..1.0);
            let when = -u.ln() / rate;
            self.push_event(when, EventKind::Crash(i));
        }
        self
    }

    /// Schedules explicit crash and restart times (builder style): each
    /// `(crash_at, restart_at, node)` entry fail-stops `node` at
    /// `crash_at`; with `Some(restart_at)` the node revives then, keeping
    /// the protocol state it crashed holding (messages addressed to it in
    /// between are dropped). `None` is a permanent crash. The engine never
    /// crashes its last live node.
    ///
    /// # Panics
    ///
    /// Panics if a node id is out of range or a restart does not strictly
    /// follow its crash.
    pub fn with_crash_restart_schedule(mut self, schedule: &[(f64, Option<f64>, NodeId)]) -> Self {
        for &(at, restart, node) in schedule {
            assert!(node < self.nodes.len(), "node {node} out of range");
            self.push_event(at, EventKind::Crash(node));
            if let Some(r) = restart {
                assert!(r > at, "restart must strictly follow the crash");
                self.push_event(r, EventKind::Restart(node));
            }
        }
        self
    }

    /// Installs partition windows (builder style): a message from `a`
    /// to `b` whose delivery time falls inside a `(from, until, side)`
    /// window with `a` and `b` on opposite sides of `side` is dropped.
    /// Nodes keep ticking throughout — the asynchronous analogue of a
    /// healed network split.
    ///
    /// # Panics
    ///
    /// Panics if a window is empty or negative.
    pub fn with_partition_windows(mut self, windows: Vec<(f64, f64, Vec<NodeId>)>) -> Self {
        for (from, until, _) in &windows {
            assert!(until > from && *from >= 0.0, "invalid partition window");
        }
        self.partitions = windows;
        self
    }

    /// Attaches a trace sink (builder style). A disabled tracer (the
    /// default) costs one branch per event and never builds events.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    fn partitioned(&self, a: NodeId, b: NodeId, t: f64) -> bool {
        self.partitions.iter().any(|(from, until, side)| {
            (*from..*until).contains(&t) && (side.contains(&a) != side.contains(&b))
        })
    }

    /// All node protocol states (including crashed nodes' last state).
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Whether node `i` is still live.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_alive(&self, i: NodeId) -> bool {
        self.alive[i]
    }

    /// Ids of live nodes.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).filter(|&i| self.alive[i]).collect()
    }

    /// Node `i`'s protocol state.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: NodeId) -> &P {
        &self.nodes[i]
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> NetMetrics {
        self.metrics
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.metrics.in_flight()
    }

    fn push_event(&mut self, time: f64, kind: EventKind<P::Message>) {
        self.queue.push(Event {
            time,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    /// Processes events until simulated time reaches `t_end`.
    pub fn run_until(&mut self, t_end: f64) {
        let mut outbox: Vec<(NodeId, P::Message)> = Vec::new();
        while let Some(head) = self.queue.peek() {
            if head.time > t_end {
                break;
            }
            let ev = self.queue.pop().expect("peeked event exists");
            self.now = ev.time;
            if let EventKind::Crash(i) = ev.kind {
                // Fail-stop, sparing the last live node.
                if self.alive[i] && self.alive.iter().filter(|&&a| a).count() > 1 {
                    self.alive[i] = false;
                    self.metrics.crashes += 1;
                    let at = self.now;
                    self.tracer.emit(|| TraceEvent::FaultActivated {
                        kind: "crash".to_string(),
                        node: Some(i),
                        at,
                    });
                }
                continue;
            }
            if let EventKind::Restart(i) = ev.kind {
                if !self.alive[i] {
                    self.alive[i] = true;
                    self.metrics.restarts += 1;
                    let at = self.now;
                    self.tracer.emit(|| TraceEvent::FaultHealed {
                        kind: "crash".to_string(),
                        node: Some(i),
                        at,
                    });
                    // A revived node needs its tick loop restarted (the
                    // old one died unrescheduled with the crash).
                    let jitter = self.env_rng.gen_range(0.5..1.5);
                    self.push_event(self.now + self.tick_interval * jitter, EventKind::Tick(i));
                }
                continue;
            }
            if let EventKind::Deliver { from, to, .. } = &ev.kind {
                if self.partitioned(*from, *to, ev.time) {
                    let (from, to) = (*from, *to);
                    self.metrics.messages_dropped += 1;
                    self.tracer.emit(|| TraceEvent::MessageDropped {
                        from,
                        to,
                        reason: DropReason::Partitioned,
                    });
                    continue;
                }
            }
            let was_tick = matches!(ev.kind, EventKind::Tick(_));
            let node = match &ev.kind {
                EventKind::Tick(i) => *i,
                EventKind::Deliver { to, .. } => *to,
                EventKind::Crash(_) | EventKind::Restart(_) => {
                    unreachable!("faults are handled above")
                }
            };
            if !self.alive[node] {
                if !was_tick {
                    // Message to a crashed node: dropped, weight lost.
                    self.metrics.messages_dropped += 1;
                    if let EventKind::Deliver { from, to, .. } = &ev.kind {
                        let (from, to) = (*from, *to);
                        self.tracer.emit(|| TraceEvent::MessageDropped {
                            from,
                            to,
                            reason: DropReason::Crashed,
                        });
                    }
                }
                // Crashed nodes neither tick (no reschedule) nor receive.
                continue;
            }
            {
                let mut ctx = Context::new(
                    node,
                    self.topo.neighbors(node),
                    &mut self.rr_cursors[node],
                    &mut self.node_rngs[node],
                    &mut outbox,
                    self.now as u64,
                )
                .with_alive(&self.alive);
                match ev.kind {
                    EventKind::Tick(_) => {
                        self.nodes[node].on_tick(&mut ctx);
                        self.metrics.ticks += 1;
                    }
                    EventKind::Deliver {
                        from,
                        span_seq,
                        lamport,
                        msg,
                        ..
                    } => {
                        let mut bytes = 0u64;
                        if let Some(sizer) = self.sizer {
                            bytes = sizer(&msg) as u64;
                            self.metrics.bytes_delivered += bytes;
                        }
                        self.nodes[node].on_message(from, msg, &mut ctx);
                        self.metrics.messages_delivered += 1;
                        // Lamport receive rule before stamping the event.
                        self.lamport[node] = self.lamport[node].max(lamport) + 1;
                        let recv_lamport = self.lamport[node];
                        let (to, at) = (node, self.now);
                        self.tracer.emit(|| TraceEvent::MessageDelivered {
                            from,
                            to,
                            bytes,
                            at,
                            lamport: Some(recv_lamport),
                            span_seq: Some(span_seq),
                        });
                    }
                    EventKind::Crash(_) | EventKind::Restart(_) => {
                        unreachable!("handled above")
                    }
                }
            }
            if was_tick {
                let time = self.now;
                self.tracer
                    .emit(|| TraceEvent::TickCompleted { node, time });
            }
            // Schedule produced messages with random delays (scaled by the
            // per-link factor when one is installed).
            for (to, msg) in outbox.drain(..) {
                let mut delay = self.delay.sample(&mut self.env_rng);
                if let Some(factor) = &self.link_factor {
                    delay *= factor(node, to);
                }
                self.metrics.messages_sent += 1;
                let mut bytes = 0u64;
                if let Some(sizer) = self.sizer {
                    bytes = sizer(&msg) as u64;
                    self.metrics.bytes_sent += bytes;
                }
                self.send_seq[node] += 1;
                self.lamport[node] += 1;
                let (span_seq, lamport) = (self.send_seq[node], self.lamport[node]);
                self.tracer.emit(|| TraceEvent::MessageSent {
                    from: node,
                    to,
                    bytes,
                    at: self.now,
                    lamport: Some(lamport),
                    seq: Some(span_seq),
                });
                self.push_event(
                    self.now + delay,
                    EventKind::Deliver {
                        from: node,
                        to,
                        span_seq,
                        lamport,
                        msg,
                    },
                );
            }
            // Reschedule the node's next tick with ±50 % jitter.
            if was_tick {
                let jitter = self.env_rng.gen_range(0.5..1.5);
                let next = self.now + self.tick_interval * jitter;
                self.push_event(next, EventKind::Tick(node));
            }
        }
        self.now = t_end.max(self.now);
    }

    /// Drains all in-flight deliveries without triggering further ticks —
    /// useful at the end of a run to reach a message-free state.
    ///
    /// Any messages produced while handling these deliveries are delivered
    /// too (the process terminates because handlers of a quiescent protocol
    /// eventually stop sending; a `max_events` cap guards against protocols
    /// that always respond).
    pub fn drain_in_flight(&mut self, max_events: u64) {
        let mut outbox: Vec<(NodeId, P::Message)> = Vec::new();
        let mut processed = 0;
        // Pull events in time order, executing deliveries and discarding
        // ticks (without rescheduling them).
        while processed < max_events {
            let Some(ev) = self.queue.pop() else { break };
            self.now = ev.time.max(self.now);
            let handler = match ev.kind {
                EventKind::Tick(_) | EventKind::Crash(_) | EventKind::Restart(_) => continue,
                EventKind::Deliver { from, to, .. }
                    if !self.alive[to] || self.partitioned(from, to, ev.time) =>
                {
                    let reason = if self.alive[to] {
                        DropReason::Partitioned
                    } else {
                        DropReason::Crashed
                    };
                    self.metrics.messages_dropped += 1;
                    self.tracer
                        .emit(|| TraceEvent::MessageDropped { from, to, reason });
                    continue;
                }
                EventKind::Deliver {
                    from,
                    to,
                    span_seq,
                    lamport,
                    msg,
                } => {
                    let mut ctx = Context::new(
                        to,
                        self.topo.neighbors(to),
                        &mut self.rr_cursors[to],
                        &mut self.node_rngs[to],
                        &mut outbox,
                        self.now as u64,
                    );
                    let mut bytes = 0u64;
                    if let Some(sizer) = self.sizer {
                        bytes = sizer(&msg) as u64;
                        self.metrics.bytes_delivered += bytes;
                    }
                    self.nodes[to].on_message(from, msg, &mut ctx);
                    self.metrics.messages_delivered += 1;
                    self.lamport[to] = self.lamport[to].max(lamport) + 1;
                    let recv_lamport = self.lamport[to];
                    let at = self.now;
                    self.tracer.emit(|| TraceEvent::MessageDelivered {
                        from,
                        to,
                        bytes,
                        at,
                        lamport: Some(recv_lamport),
                        span_seq: Some(span_seq),
                    });
                    processed += 1;
                    to
                }
            };
            for (to, msg) in outbox.drain(..) {
                let mut delay = self.delay.sample(&mut self.env_rng);
                if let Some(factor) = &self.link_factor {
                    delay *= factor(handler, to);
                }
                self.metrics.messages_sent += 1;
                let mut bytes = 0u64;
                if let Some(sizer) = self.sizer {
                    bytes = sizer(&msg) as u64;
                    self.metrics.bytes_sent += bytes;
                }
                self.send_seq[handler] += 1;
                self.lamport[handler] += 1;
                let (span_seq, lamport) = (self.send_seq[handler], self.lamport[handler]);
                self.tracer.emit(|| TraceEvent::MessageSent {
                    from: handler,
                    to,
                    bytes,
                    at: self.now,
                    lamport: Some(lamport),
                    seq: Some(span_seq),
                });
                self.push_event(
                    self.now + delay,
                    EventKind::Deliver {
                        from: handler,
                        to,
                        span_seq,
                        lamport,
                        msg,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct MaxGossip {
        value: u64,
    }

    impl Protocol for MaxGossip {
        type Message = u64;

        fn on_tick(&mut self, ctx: &mut Context<'_, u64>) {
            let to = ctx.random_neighbor();
            ctx.send(to, self.value);
        }

        fn on_message(&mut self, _from: NodeId, msg: u64, _ctx: &mut Context<'_, u64>) {
            self.value = self.value.max(msg);
        }
    }

    fn engine(topo: Topology, seed: u64) -> EventEngine<MaxGossip> {
        EventEngine::new(topo, seed, |i| MaxGossip { value: i as u64 })
    }

    #[test]
    fn max_spreads_over_ring() {
        let mut e = engine(Topology::ring(12), 3);
        e.run_until(300.0);
        assert!(e.nodes().iter().all(|n| n.value == 11));
    }

    #[test]
    fn max_spreads_under_exponential_delays() {
        let mut e = EventEngine::with_timing(
            Topology::grid(4, 4),
            9,
            1.0,
            DelayModel::Exponential { mean: 3.0 },
            |i| MaxGossip { value: i as u64 },
        );
        e.run_until(400.0);
        assert!(e.nodes().iter().all(|n| n.value == 15));
    }

    #[test]
    fn deterministic_given_seed() {
        let values = |seed| {
            let mut e = engine(Topology::complete(10), seed);
            e.run_until(5.0);
            e.nodes().iter().map(|n| n.value).collect::<Vec<_>>()
        };
        assert_eq!(values(4), values(4));
    }

    #[test]
    fn time_advances_and_metrics_counted() {
        let mut e = engine(Topology::complete(5), 2);
        e.run_until(10.0);
        assert!(e.now() >= 10.0);
        let m = e.metrics();
        assert!(
            m.ticks >= 5 * 5,
            "expected ~10 ticks per node, got {}",
            m.ticks
        );
        assert!(m.messages_sent > 0);
        assert!(m.messages_delivered <= m.messages_sent);
    }

    #[test]
    fn drain_delivers_leftovers() {
        let mut e = engine(Topology::complete(5), 2);
        e.run_until(10.0);
        e.drain_in_flight(10_000);
        assert_eq!(e.in_flight(), 0);
    }

    #[test]
    fn crash_restart_revives_node_and_its_tick_loop() {
        // Node 0 goes down at t=5 and comes back at t=50: while down its
        // state freezes; once revived its tick loop restarts and it
        // catches up with the flood (max value is 7).
        let mut e =
            engine(Topology::complete(8), 5).with_crash_restart_schedule(&[(5.0, Some(50.0), 0)]);
        e.run_until(20.0);
        assert!(!e.is_alive(0));
        let frozen = e.nodes()[0].value;
        e.run_until(45.0);
        assert_eq!(e.nodes()[0].value, frozen, "down nodes receive nothing");
        e.run_until(300.0);
        assert!(e.is_alive(0));
        assert_eq!(e.metrics().crashes, 1);
        assert_eq!(e.metrics().restarts, 1);
        assert!(
            e.nodes().iter().all(|n| n.value == 7),
            "revived node must tick and gossip again"
        );
    }

    #[test]
    fn permanent_crash_entry_never_restarts() {
        let mut e = engine(Topology::ring(4), 3).with_crash_restart_schedule(&[(2.0, None, 1)]);
        e.run_until(100.0);
        assert!(!e.is_alive(1));
        assert_eq!(e.metrics().restarts, 0);
    }

    #[test]
    fn partition_window_blocks_cross_traffic_until_heal() {
        // Split {0,1} from {2,3} until t=80; the max (3) cannot cross.
        let mut e =
            engine(Topology::complete(4), 11).with_partition_windows(vec![(0.0, 80.0, vec![0, 1])]);
        e.run_until(70.0);
        assert!(e.nodes()[0].value <= 1 && e.nodes()[1].value <= 1);
        assert!(e.metrics().messages_dropped > 0);
        e.run_until(300.0);
        assert!(e.nodes().iter().all(|n| n.value == 3));
        assert_eq!(e.metrics().crashes, 0, "partitions are not crashes");
    }

    #[test]
    #[should_panic(expected = "restart must strictly follow the crash")]
    fn rejects_restart_before_crash() {
        let _ = engine(Topology::ring(3), 1).with_crash_restart_schedule(&[(5.0, Some(2.0), 0)]);
    }

    #[test]
    #[should_panic(expected = "tick interval must be positive")]
    fn rejects_bad_tick_interval() {
        let _ =
            EventEngine::with_timing(Topology::ring(3), 1, 0.0, DelayModel::Constant(1.0), |i| {
                MaxGossip { value: i as u64 }
            });
    }

    #[test]
    #[should_panic(expected = "invalid uniform delay bounds")]
    fn rejects_bad_delay_model() {
        let _ = EventEngine::with_timing(
            Topology::ring(3),
            1,
            1.0,
            DelayModel::Uniform { min: 2.0, max: 1.0 },
            |i| MaxGossip { value: i as u64 },
        );
    }
    #[test]
    fn message_sizer_prices_every_send_and_delivery() {
        let run = |sized: bool| {
            let mut e = engine(Topology::ring(6), 2);
            if sized {
                e = e.with_message_sizer(|_| 24);
            }
            e.run_until(30.0);
            e.drain_in_flight(10_000);
            e.metrics()
        };
        let plain = run(false);
        assert_eq!(plain.bytes_sent, 0);
        assert_eq!(plain.bytes_delivered, 0);
        let sized = run(true);
        assert_eq!(
            sized.messages_sent, plain.messages_sent,
            "sizer is observational"
        );
        assert_eq!(sized.bytes_sent, 24 * sized.messages_sent);
        assert_eq!(sized.bytes_delivered, 24 * sized.messages_delivered);
    }
}
