use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use rand::Rng;

use crate::NodeId;

/// Errors from topology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The requested node count is too small for the requested shape.
    TooFewNodes {
        /// Minimum node count the constructor supports.
        minimum: usize,
        /// Requested node count.
        actual: usize,
    },
    /// An edge endpoint is out of range.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Total number of nodes.
        n: usize,
    },
    /// A random-graph constructor failed to produce a connected graph
    /// within its retry budget.
    CouldNotConnect {
        /// Number of attempts made.
        attempts: usize,
    },
    /// The resulting graph is not strongly connected.
    NotConnected,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::TooFewNodes { minimum, actual } => {
                write!(f, "need at least {minimum} nodes, got {actual}")
            }
            TopologyError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for {n} nodes")
            }
            TopologyError::CouldNotConnect { attempts } => {
                write!(
                    f,
                    "failed to generate a connected graph in {attempts} attempts"
                )
            }
            TopologyError::NotConnected => write!(f, "graph is not strongly connected"),
        }
    }
}

impl Error for TopologyError {}

/// A static directed communication graph (the paper's network model).
///
/// All constructors produce *strongly connected* graphs, as required by the
/// convergence theorem. Undirected shapes (ring, grid, …) are represented
/// by edges in both directions.
///
/// # Example
///
/// ```
/// use distclass_net::Topology;
///
/// let t = Topology::grid(3, 4);
/// assert_eq!(t.len(), 12);
/// assert!(t.is_strongly_connected());
/// assert_eq!(t.neighbors(0), &[1, 4]); // right and down from the corner
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    out: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Builds a topology from explicit directed edges.
    ///
    /// Duplicate edges and self-loops are rejected implicitly: duplicates
    /// are deduplicated, self-loops ignored.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NodeOutOfRange`] for invalid endpoints and
    /// [`TopologyError::NotConnected`] if the graph is not strongly
    /// connected.
    pub fn from_directed_edges(
        n: usize,
        edges: &[(NodeId, NodeId)],
    ) -> Result<Self, TopologyError> {
        let mut out = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a >= n {
                return Err(TopologyError::NodeOutOfRange { node: a, n });
            }
            if b >= n {
                return Err(TopologyError::NodeOutOfRange { node: b, n });
            }
            if a != b && !out[a].contains(&b) {
                out[a].push(b);
            }
        }
        for nbrs in &mut out {
            nbrs.sort_unstable();
        }
        let topo = Topology { out };
        if !topo.is_strongly_connected() {
            return Err(TopologyError::NotConnected);
        }
        Ok(topo)
    }

    /// Builds a topology from undirected edges (each becomes two directed
    /// edges).
    ///
    /// # Errors
    ///
    /// Same as [`Topology::from_directed_edges`].
    pub fn from_undirected_edges(
        n: usize,
        edges: &[(NodeId, NodeId)],
    ) -> Result<Self, TopologyError> {
        let mut directed = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in edges {
            directed.push((a, b));
            directed.push((b, a));
        }
        Topology::from_directed_edges(n, &directed)
    }

    /// The complete graph on `n` nodes (the paper's simulation topology).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn complete(n: usize) -> Self {
        assert!(n >= 2, "complete graph needs at least 2 nodes");
        let out = (0..n)
            .map(|i| (0..n).filter(|&j| j != i).collect())
            .collect();
        Topology { out }
    }

    /// A bidirectional ring.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 2, "ring needs at least 2 nodes");
        let out = (0..n)
            .map(|i| {
                let mut nbrs = vec![(i + 1) % n, (i + n - 1) % n];
                nbrs.sort_unstable();
                nbrs.dedup();
                nbrs
            })
            .collect();
        Topology { out }
    }

    /// A directed cycle `0 → 1 → … → n−1 → 0` — the sparsest strongly
    /// connected graph, a worst case for convergence speed.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn directed_cycle(n: usize) -> Self {
        assert!(n >= 2, "cycle needs at least 2 nodes");
        let out = (0..n).map(|i| vec![(i + 1) % n]).collect();
        Topology { out }
    }

    /// A bidirectional path (line) graph.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn line(n: usize) -> Self {
        assert!(n >= 2, "line needs at least 2 nodes");
        let out = (0..n)
            .map(|i| {
                let mut nbrs = Vec::new();
                if i > 0 {
                    nbrs.push(i - 1);
                }
                if i + 1 < n {
                    nbrs.push(i + 1);
                }
                nbrs
            })
            .collect();
        Topology { out }
    }

    /// A star: node 0 is the hub connected to every leaf (both directions).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn star(n: usize) -> Self {
        assert!(n >= 2, "star needs at least 2 nodes");
        let mut out = vec![Vec::new(); n];
        out[0] = (1..n).collect();
        for (leaf, nbrs) in out.iter_mut().enumerate().skip(1) {
            nbrs.push(0);
            let _ = leaf;
        }
        Topology { out }
    }

    /// A `rows × cols` 4-neighbor grid.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols < 2` or either dimension is zero.
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1 && rows * cols >= 2, "grid too small");
        let idx = |r: usize, c: usize| r * cols + c;
        let mut out = vec![Vec::new(); rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                let mut nbrs = Vec::new();
                if r > 0 {
                    nbrs.push(idx(r - 1, c));
                }
                if r + 1 < rows {
                    nbrs.push(idx(r + 1, c));
                }
                if c > 0 {
                    nbrs.push(idx(r, c - 1));
                }
                if c + 1 < cols {
                    nbrs.push(idx(r, c + 1));
                }
                nbrs.sort_unstable();
                out[idx(r, c)] = nbrs;
            }
        }
        Topology { out }
    }

    /// An `rows × cols` torus: a grid with wrap-around edges, so every node
    /// has exactly four neighbors (a common sensor-array idealization with
    /// no boundary effects).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 3 (smaller tori degenerate into
    /// multi-edges).
    pub fn torus(rows: usize, cols: usize) -> Self {
        assert!(rows >= 3 && cols >= 3, "torus needs both sides >= 3");
        let idx = |r: usize, c: usize| r * cols + c;
        let mut out = vec![Vec::new(); rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                let mut nbrs = vec![
                    idx((r + rows - 1) % rows, c),
                    idx((r + 1) % rows, c),
                    idx(r, (c + cols - 1) % cols),
                    idx(r, (c + 1) % cols),
                ];
                nbrs.sort_unstable();
                nbrs.dedup();
                out[idx(r, c)] = nbrs;
            }
        }
        Topology { out }
    }

    /// An Erdős–Rényi `G(n, p)` graph (undirected), retried until strongly
    /// connected.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::TooFewNodes`] if `n < 2` and
    /// [`TopologyError::CouldNotConnect`] if 100 attempts all fail.
    pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> Result<Self, TopologyError> {
        if n < 2 {
            return Err(TopologyError::TooFewNodes {
                minimum: 2,
                actual: n,
            });
        }
        const ATTEMPTS: usize = 100;
        for _ in 0..ATTEMPTS {
            let mut edges = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.gen::<f64>() < p {
                        edges.push((a, b));
                    }
                }
            }
            if let Ok(t) = Topology::from_undirected_edges(n, &edges) {
                return Ok(t);
            }
        }
        Err(TopologyError::CouldNotConnect { attempts: ATTEMPTS })
    }

    /// A random geometric graph: nodes placed uniformly in the unit square,
    /// connected when within `radius` — the classic sensor-network
    /// deployment model. Retried until connected.
    ///
    /// Returns the topology together with the node positions `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::TooFewNodes`] if `n < 2` and
    /// [`TopologyError::CouldNotConnect`] if 100 attempts all fail.
    pub fn random_geometric<R: Rng>(
        n: usize,
        radius: f64,
        rng: &mut R,
    ) -> Result<(Self, Vec<(f64, f64)>), TopologyError> {
        if n < 2 {
            return Err(TopologyError::TooFewNodes {
                minimum: 2,
                actual: n,
            });
        }
        const ATTEMPTS: usize = 100;
        let r2 = radius * radius;
        for _ in 0..ATTEMPTS {
            let pos: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
            let mut edges = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    let dx = pos[a].0 - pos[b].0;
                    let dy = pos[a].1 - pos[b].1;
                    if dx * dx + dy * dy <= r2 {
                        edges.push((a, b));
                    }
                }
            }
            if let Ok(t) = Topology::from_undirected_edges(n, &edges) {
                return Ok((t, pos));
            }
        }
        Err(TopologyError::CouldNotConnect { attempts: ATTEMPTS })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// `true` when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// The out-neighbors of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.out[node]
    }

    /// Out-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        self.out[node].len()
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// `true` when every node can reach every other node.
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.len();
        if n == 0 {
            return false;
        }
        if self.reachable_from(0).iter().any(|&r| !r) {
            return false;
        }
        // Strong connectivity also needs reachability in the reversed graph.
        let mut rev = vec![Vec::new(); n];
        for (a, nbrs) in self.out.iter().enumerate() {
            for &b in nbrs {
                rev[b].push(a);
            }
        }
        let rev_topo = Topology { out: rev };
        rev_topo.reachable_from(0).iter().all(|&r| r)
    }

    /// The diameter (longest shortest path) of the graph, in hops.
    ///
    /// # Panics
    ///
    /// Panics if the graph is not strongly connected.
    pub fn diameter(&self) -> usize {
        let mut best = 0;
        for s in 0..self.len() {
            let dist = self.bfs_distances(s);
            for d in &dist {
                let d = d.expect("diameter requires a strongly connected graph");
                best = best.max(d);
            }
        }
        best
    }

    /// BFS hop distances from `source` (`None` for unreachable nodes).
    pub fn bfs_distances(&self, source: NodeId) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.len()];
        let mut queue = VecDeque::new();
        dist[source] = Some(0);
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("visited nodes have distances");
            for &v in &self.out[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    fn reachable_from(&self, source: NodeId) -> Vec<bool> {
        self.bfs_distances(source)
            .into_iter()
            .map(|d| d.is_some())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_shape() {
        let t = Topology::complete(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.edge_count(), 20);
        assert!(t.is_strongly_connected());
        assert_eq!(t.diameter(), 1);
        assert_eq!(t.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn ring_shape() {
        let t = Topology::ring(6);
        assert_eq!(t.degree(0), 2);
        assert!(t.is_strongly_connected());
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn two_node_ring_dedups() {
        let t = Topology::ring(2);
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.neighbors(1), &[0]);
    }

    #[test]
    fn directed_cycle_is_strongly_connected() {
        let t = Topology::directed_cycle(5);
        assert_eq!(t.degree(0), 1);
        assert!(t.is_strongly_connected());
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn line_and_star() {
        let line = Topology::line(4);
        assert_eq!(line.diameter(), 3);
        assert_eq!(line.neighbors(0), &[1]);
        assert_eq!(line.neighbors(1), &[0, 2]);

        let star = Topology::star(5);
        assert_eq!(star.degree(0), 4);
        assert_eq!(star.degree(3), 1);
        assert_eq!(star.diameter(), 2);
    }

    #[test]
    fn grid_shape() {
        let t = Topology::grid(3, 3);
        assert!(t.is_strongly_connected());
        assert_eq!(t.diameter(), 4);
        assert_eq!(t.degree(4), 4); // center
        assert_eq!(t.degree(0), 2); // corner
    }

    #[test]
    fn torus_is_four_regular_and_connected() {
        let t = Topology::torus(4, 5);
        assert_eq!(t.len(), 20);
        assert!(t.is_strongly_connected());
        assert!((0..20).all(|i| t.degree(i) == 4));
        // Wrap-around shrinks the diameter below the open grid's.
        assert!(t.diameter() < Topology::grid(4, 5).diameter());
    }

    #[test]
    #[should_panic(expected = "torus needs both sides >= 3")]
    fn tiny_torus_rejected() {
        let _ = Topology::torus(2, 5);
    }

    #[test]
    fn from_directed_edges_requires_strong_connectivity() {
        // 0 → 1 but no way back.
        assert_eq!(
            Topology::from_directed_edges(2, &[(0, 1)]),
            Err(TopologyError::NotConnected)
        );
        let ok = Topology::from_directed_edges(2, &[(0, 1), (1, 0)]).unwrap();
        assert!(ok.is_strongly_connected());
    }

    #[test]
    fn from_edges_validates_range() {
        assert_eq!(
            Topology::from_directed_edges(2, &[(0, 5)]),
            Err(TopologyError::NodeOutOfRange { node: 5, n: 2 })
        );
    }

    #[test]
    fn from_edges_ignores_self_loops_and_duplicates() {
        let t = Topology::from_undirected_edges(2, &[(0, 0), (0, 1), (0, 1), (1, 0)]).unwrap();
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.edge_count(), 2);
    }

    #[test]
    fn erdos_renyi_connected() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Topology::erdos_renyi(30, 0.2, &mut rng).unwrap();
        assert!(t.is_strongly_connected());
        assert_eq!(t.len(), 30);
    }

    #[test]
    fn erdos_renyi_rejects_tiny() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(matches!(
            Topology::erdos_renyi(1, 0.5, &mut rng),
            Err(TopologyError::TooFewNodes { .. })
        ));
    }

    #[test]
    fn erdos_renyi_gives_up_on_impossible_density() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(matches!(
            Topology::erdos_renyi(50, 0.0, &mut rng),
            Err(TopologyError::CouldNotConnect { .. })
        ));
    }

    #[test]
    fn random_geometric_connected_with_positions() {
        let mut rng = StdRng::seed_from_u64(11);
        let (t, pos) = Topology::random_geometric(40, 0.4, &mut rng).unwrap();
        assert!(t.is_strongly_connected());
        assert_eq!(pos.len(), 40);
        for (x, y) in pos {
            assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn bfs_distances_on_line() {
        let t = Topology::line(4);
        let d = t.bfs_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn display_of_errors() {
        assert!(!TopologyError::NotConnected.to_string().is_empty());
    }
}
