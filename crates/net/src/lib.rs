#![warn(missing_docs)]
//! Deterministic network simulator for the `distclass` workspace.
//!
//! Implements the paper's network model (§3.1): a static, directed,
//! connected topology of `n` nodes joined by reliable asynchronous links —
//! messages are never lost, duplicated or forged, but may be delayed
//! arbitrarily. Two execution engines are provided:
//!
//! * [`RoundEngine`] — the synchronous, round-based engine used by the
//!   paper's evaluation (§5.3): in each round every live node takes one
//!   communication turn, then all messages sent in the round are delivered.
//!   Supports crash faults (nodes crash with a per-round probability, as in
//!   Figure 4).
//! * [`EventEngine`] — a fully asynchronous discrete-event engine with
//!   randomized per-message delays and per-node tick times, used to
//!   exercise the convergence theorem's asynchronous setting.
//!
//! Protocols implement the [`Protocol`] trait and are completely
//! deterministic given the engine seed, which makes every simulation in the
//! test suite and benchmark harness reproducible.
//!
//! # Example
//!
//! ```
//! use distclass_net::{Context, NodeId, Protocol, RoundEngine, Topology};
//!
//! /// Every node pushes its max-so-far to a round-robin neighbor.
//! struct MaxGossip {
//!     value: u64,
//! }
//!
//! impl Protocol for MaxGossip {
//!     type Message = u64;
//!     fn on_tick(&mut self, ctx: &mut Context<'_, u64>) {
//!         let to = ctx.round_robin_neighbor();
//!         ctx.send(to, self.value);
//!     }
//!     fn on_message(&mut self, _from: NodeId, msg: u64, _ctx: &mut Context<'_, u64>) {
//!         self.value = self.value.max(msg);
//!     }
//! }
//!
//! let topo = Topology::ring(8);
//! let mut engine = RoundEngine::new(topo, 42, |i| MaxGossip { value: i as u64 });
//! engine.run_rounds(16);
//! assert!(engine.nodes().iter().all(|n| n.value == 7));
//! ```

mod engine;
mod events;
mod faults;
mod metrics;
mod rng;
mod rounds;
mod topology;

pub use engine::{Context, Protocol};
pub use events::{DelayModel, EventEngine};
pub use faults::CrashModel;
pub use metrics::NetMetrics;
pub use rng::{derive_seed, seeded_pick, SeedSequence};
pub use rounds::RoundEngine;
pub use topology::{Topology, TopologyError};

/// Identifies a node in a simulated network (dense indices `0..n`).
pub type NodeId = usize;
