use rand::rngs::StdRng;
use rand::Rng;

use crate::NodeId;

/// A node-local protocol driven by a simulation engine.
///
/// Implementations hold per-node state; the engine owns one instance per
/// node and invokes the callbacks below. All randomness must come from
/// [`Context::rng`] so runs are reproducible.
pub trait Protocol {
    /// The message type exchanged between nodes.
    type Message: Clone;

    /// Called when this node gets a communication turn (once per round in
    /// the round engine, at tick events in the event engine).
    fn on_tick(&mut self, ctx: &mut Context<'_, Self::Message>);

    /// Called when a message from `from` is delivered.
    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        ctx: &mut Context<'_, Self::Message>,
    );

    /// Called by the round engine after all of a round's messages have been
    /// delivered. Protocols that batch incoming data (as the paper's
    /// simulations do: “accumulate all the received collections and run EM
    /// once for the entire set”) process their buffer here.
    fn on_round_end(&mut self, ctx: &mut Context<'_, Self::Message>) {
        let _ = ctx;
    }
}

/// The per-callback view a protocol gets of its node and the network.
///
/// Provides the node id, its static neighbor list, a deterministic RNG, the
/// current round, and the only way to communicate: [`Context::send`].
#[derive(Debug)]
pub struct Context<'a, M> {
    node: NodeId,
    neighbors: &'a [NodeId],
    // Liveness view for neighbor selection (perfect failure detector).
    // `None` means no fault information is available.
    alive: Option<&'a [bool]>,
    rr_cursor: &'a mut usize,
    rng: &'a mut StdRng,
    outbox: &'a mut Vec<(NodeId, M)>,
    round: u64,
}

impl<'a, M> Context<'a, M> {
    pub(crate) fn new(
        node: NodeId,
        neighbors: &'a [NodeId],
        rr_cursor: &'a mut usize,
        rng: &'a mut StdRng,
        outbox: &'a mut Vec<(NodeId, M)>,
        round: u64,
    ) -> Self {
        Context {
            node,
            neighbors,
            alive: None,
            rr_cursor,
            rng,
            outbox,
            round,
        }
    }

    pub(crate) fn with_alive(mut self, alive: &'a [bool]) -> Self {
        self.alive = Some(alive);
        self
    }

    fn is_live(&self, node: NodeId) -> bool {
        self.alive.map(|a| a[node]).unwrap_or(true)
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// This node's static out-neighbor list.
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// The current round (round engine) or coarse time step (event engine).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The node's deterministic random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Queues `msg` for reliable delivery to neighbor `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not one of this node's out-neighbors — the paper's
    /// model only permits communication along topology edges.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.contains(&to),
            "node {} tried to send to non-neighbor {}",
            self.node,
            to
        );
        self.outbox.push((to, msg));
    }

    /// Returns the next neighbor in round-robin order, skipping neighbors
    /// the engine knows to have crashed (when fault information is
    /// available — a perfect local failure detector, as deployed gossip
    /// systems get from their membership layer).
    ///
    /// Round-robin selection satisfies the algorithm's fairness requirement:
    /// in an infinite run every neighbor is chosen infinitely often.
    ///
    /// # Panics
    ///
    /// Panics if the node has no neighbors (impossible for the strongly
    /// connected topologies produced by [`crate::Topology`]).
    pub fn round_robin_neighbor(&mut self) -> NodeId {
        assert!(!self.neighbors.is_empty(), "node has no neighbors");
        let len = self.neighbors.len();
        for _ in 0..len {
            let pick = self.neighbors[*self.rr_cursor % len];
            *self.rr_cursor = (*self.rr_cursor + 1) % len;
            if self.is_live(pick) {
                return pick;
            }
        }
        // Every neighbor has crashed; return the current cursor position —
        // the message will be dropped, which is all that can happen.
        self.neighbors[*self.rr_cursor % len]
    }

    /// Returns a uniformly random neighbor (gossip-style push target),
    /// preferring live neighbors when fault information is available (see
    /// [`Context::round_robin_neighbor`]).
    ///
    /// Uniform selection satisfies fairness with probability 1.
    ///
    /// # Panics
    ///
    /// Panics if the node has no neighbors.
    pub fn random_neighbor(&mut self) -> NodeId {
        assert!(!self.neighbors.is_empty(), "node has no neighbors");
        // Rejection-sample a few times, then fall back to an exact scan of
        // the live neighbors (only reached when most neighbors are dead).
        for _ in 0..8 {
            let pick = self.neighbors[self.rng.gen_range(0..self.neighbors.len())];
            if self.is_live(pick) {
                return pick;
            }
        }
        let live: Vec<NodeId> = self
            .neighbors
            .iter()
            .copied()
            .filter(|&n| self.is_live(n))
            .collect();
        if live.is_empty() {
            return self.neighbors[self.rng.gen_range(0..self.neighbors.len())];
        }
        live[self.rng.gen_range(0..live.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn with_ctx<R>(neighbors: &[NodeId], f: impl FnOnce(&mut Context<'_, u32>) -> R) -> R {
        let mut cursor = 0usize;
        let mut rng = StdRng::seed_from_u64(1);
        let mut outbox: Vec<(NodeId, u32)> = Vec::new();
        let mut ctx = Context::new(0, neighbors, &mut cursor, &mut rng, &mut outbox, 3);
        f(&mut ctx)
    }

    #[test]
    fn accessors() {
        with_ctx(&[1, 2], |ctx| {
            assert_eq!(ctx.id(), 0);
            assert_eq!(ctx.neighbors(), &[1, 2]);
            assert_eq!(ctx.round(), 3);
        });
    }

    #[test]
    fn round_robin_cycles() {
        let neighbors = [1, 2, 3];
        let mut cursor = 0usize;
        let mut rng = StdRng::seed_from_u64(1);
        let mut outbox: Vec<(NodeId, u32)> = Vec::new();
        let mut picks = Vec::new();
        for _ in 0..6 {
            let mut ctx = Context::new(0, &neighbors, &mut cursor, &mut rng, &mut outbox, 0);
            picks.push(ctx.round_robin_neighbor());
        }
        assert_eq!(picks, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn random_neighbor_is_a_neighbor() {
        with_ctx(&[4, 7, 9], |ctx| {
            for _ in 0..50 {
                let n = ctx.random_neighbor();
                assert!([4, 7, 9].contains(&n));
            }
        });
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn send_to_stranger_panics() {
        with_ctx(&[1], |ctx| ctx.send(5, 0));
    }

    #[test]
    fn send_queues_to_outbox() {
        let neighbors = [1, 2];
        let mut cursor = 0usize;
        let mut rng = StdRng::seed_from_u64(1);
        let mut outbox: Vec<(NodeId, u32)> = Vec::new();
        {
            let mut ctx = Context::new(0, &neighbors, &mut cursor, &mut rng, &mut outbox, 0);
            ctx.send(1, 10);
            ctx.send(2, 20);
        }
        assert_eq!(outbox, vec![(1, 10), (2, 20)]);
    }
}
