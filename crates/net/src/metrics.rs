/// Counters describing a simulation run.
///
/// # Example
///
/// ```
/// use distclass_net::NetMetrics;
///
/// let m = NetMetrics::default();
/// assert_eq!(m.messages_sent, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetMetrics {
    /// Messages handed to the engine by protocols.
    pub messages_sent: u64,
    /// Messages delivered to a live recipient.
    pub messages_delivered: u64,
    /// Messages dropped because the recipient had crashed.
    pub messages_dropped: u64,
    /// Protocol tick callbacks executed.
    pub ticks: u64,
    /// Rounds completed (round engine only).
    pub rounds: u64,
    /// Nodes crashed so far.
    pub crashes: u64,
    /// Crashed nodes revived by a `CrashRestart` schedule.
    pub restarts: u64,
    /// Wire bytes of all sent messages. Zero unless the engine was given a
    /// message sizer (see `RoundEngine::with_message_sizer`); the sizer
    /// prices each message as its encoded wire size, so simulations report
    /// the byte costs a deployment would pay.
    pub bytes_sent: u64,
    /// Wire bytes of messages delivered to a live recipient.
    pub bytes_delivered: u64,
}

impl NetMetrics {
    /// Messages still unaccounted for (sent but neither delivered nor
    /// dropped). Non-zero only while a round/run is in progress.
    ///
    /// Saturates at zero: accounting can transiently drift (e.g. a
    /// restart-revived node re-counting a delivery), and a diagnostic
    /// counter must never be the thing that panics.
    pub fn in_flight(&self) -> u64 {
        self.messages_sent
            .saturating_sub(self.messages_delivered)
            .saturating_sub(self.messages_dropped)
    }
}

impl std::fmt::Display for NetMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sent={} delivered={} dropped={} ticks={} rounds={} crashes={} \
             restarts={} bytes_sent={} bytes_delivered={}",
            self.messages_sent,
            self.messages_delivered,
            self.messages_dropped,
            self.ticks,
            self.rounds,
            self.crashes,
            self.restarts,
            self.bytes_sent,
            self.bytes_delivered
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_flight_accounting() {
        let m = NetMetrics {
            messages_sent: 10,
            messages_delivered: 7,
            messages_dropped: 1,
            ..NetMetrics::default()
        };
        assert_eq!(m.in_flight(), 2);
    }

    #[test]
    fn in_flight_saturates_when_accounting_drifts() {
        // More delivered than sent (a revived node double-counting) must
        // read as zero, not underflow-panic.
        let m = NetMetrics {
            messages_sent: 3,
            messages_delivered: 5,
            messages_dropped: 1,
            ..NetMetrics::default()
        };
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn display_mentions_counts() {
        let m = NetMetrics::default();
        assert!(m.to_string().contains("sent=0"));
    }
}
