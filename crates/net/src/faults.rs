use crate::NodeId;

/// Crash-fault injection policy for the round engine.
///
/// Crashed nodes stop ticking and receiving forever (fail-stop). Messages
/// in flight to a crashed node are dropped, so the weight they carry leaves
/// the system — exactly the failure mode Figure 4 of the paper examines.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub enum CrashModel {
    /// No crashes.
    #[default]
    None,
    /// After every round, each live node crashes independently with
    /// probability `prob` (the paper uses 0.05). The engine never crashes
    /// its last live node so per-round statistics stay well defined.
    PerRound {
        /// Per-node, per-round crash probability in `[0, 1]`.
        prob: f64,
    },
    /// Crash specific nodes at the end of specific rounds.
    Scheduled(Vec<(u64, NodeId)>),
    /// Crash specific nodes at the end of specific rounds, each with an
    /// optional restart round. `(crash_round, Some(restart_round), node)`
    /// revives the node — with the state it crashed holding — at the start
    /// of `restart_round`; `(crash_round, None, node)` is a permanent
    /// crash, identical to [`CrashModel::Scheduled`].
    CrashRestart {
        /// `(crash_round, restart_round, node)` triples.
        schedule: Vec<(u64, Option<u64>, NodeId)>,
    },
    /// Partition the network during round windows: in every round `r` with
    /// `from <= r < until`, messages between a node inside `nodes` and a
    /// node outside it are dropped in both directions (links inside each
    /// side keep working). Nodes keep ticking — the round analogue of a
    /// healed network split, not a crash.
    Partition {
        /// `(from_round, until_round, nodes_on_one_side)` windows.
        windows: Vec<(u64, u64, Vec<NodeId>)>,
    },
}

impl CrashModel {
    /// A per-round crash probability model.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= prob <= 1.0`.
    pub fn per_round(prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        CrashModel::PerRound { prob }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_none() {
        assert_eq!(CrashModel::default(), CrashModel::None);
    }

    #[test]
    fn per_round_validates() {
        assert_eq!(
            CrashModel::per_round(0.05),
            CrashModel::PerRound { prob: 0.05 }
        );
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn per_round_rejects_invalid() {
        let _ = CrashModel::per_round(1.5);
    }
}
