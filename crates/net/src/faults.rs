use crate::NodeId;

/// Crash-fault injection policy for the round engine.
///
/// Crashed nodes stop ticking and receiving forever (fail-stop). Messages
/// in flight to a crashed node are dropped, so the weight they carry leaves
/// the system — exactly the failure mode Figure 4 of the paper examines.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub enum CrashModel {
    /// No crashes.
    #[default]
    None,
    /// After every round, each live node crashes independently with
    /// probability `prob` (the paper uses 0.05). The engine never crashes
    /// its last live node so per-round statistics stay well defined.
    PerRound {
        /// Per-node, per-round crash probability in `[0, 1]`.
        prob: f64,
    },
    /// Crash specific nodes at the end of specific rounds.
    Scheduled(Vec<(u64, NodeId)>),
}

impl CrashModel {
    /// A per-round crash probability model.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= prob <= 1.0`.
    pub fn per_round(prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        CrashModel::PerRound { prob }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_none() {
        assert_eq!(CrashModel::default(), CrashModel::None);
    }

    #[test]
    fn per_round_validates() {
        assert_eq!(
            CrashModel::per_round(0.05),
            CrashModel::PerRound { prob: 0.05 }
        );
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn per_round_rejects_invalid() {
        let _ = CrashModel::per_round(1.5);
    }
}
