/// Derives an independent 64-bit seed from a base seed and a stream index
/// using the SplitMix64 finalizer.
///
/// Used to give every node, workload and engine its own deterministic RNG
/// stream from a single experiment seed.
///
/// # Example
///
/// ```
/// use distclass_net::derive_seed;
///
/// let a = derive_seed(42, 0);
/// let b = derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, 0)); // deterministic
/// ```
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic seeded choice of one candidate out of `n`: the audit
/// target picker. Every auditor derives its pick from `(seed, stream)`
/// alone, so a trace replay (or an adversary reading the code) can predict
/// the schedule for a *known* seed, but targets are unpredictable without
/// it and uniform over candidates across streams.
///
/// Returns `None` when there are no candidates.
///
/// # Example
///
/// ```
/// use distclass_net::seeded_pick;
///
/// assert_eq!(seeded_pick(7, 0, 5), seeded_pick(7, 0, 5)); // deterministic
/// assert!(seeded_pick(7, 1, 5).unwrap() < 5);
/// assert_eq!(seeded_pick(7, 1, 0), None);
/// ```
pub fn seeded_pick(seed: u64, stream: u64, n: usize) -> Option<usize> {
    if n == 0 {
        return None;
    }
    // The SplitMix64 output is uniform over u64; the modulo bias at
    // audit-pool sizes (≪ 2^32) is negligible.
    Some((derive_seed(seed, stream) % n as u64) as usize)
}

/// A counter-based sequence of derived seeds.
///
/// # Example
///
/// ```
/// use distclass_net::SeedSequence;
///
/// let mut seq = SeedSequence::new(7);
/// let first = seq.next_seed();
/// let second = seq.next_seed();
/// assert_ne!(first, second);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSequence {
    base: u64,
    counter: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `base`.
    pub fn new(base: u64) -> Self {
        SeedSequence { base, counter: 0 }
    }

    /// Returns the next derived seed.
    pub fn next_seed(&mut self) -> u64 {
        let s = derive_seed(self.base, self.counter);
        self.counter += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_spread() {
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(1, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "collision in derived seeds");
    }

    #[test]
    fn different_bases_differ() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn sequence_advances() {
        let mut seq = SeedSequence::new(3);
        let a = seq.next_seed();
        let b = seq.next_seed();
        assert_ne!(a, b);
        assert_eq!(SeedSequence::new(3).next_seed(), a);
    }
}
