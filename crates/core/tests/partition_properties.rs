//! Fuzzing the partition implementations through the node's validator:
//! for arbitrary collection sets, `partition` must cover every index
//! exactly once, respect `k`, and never isolate a quantum-weight
//! collection — for both the greedy and the EM-based implementations.

use std::sync::Arc;

use distclass_core::{
    CentroidInstance, Classification, ClassifierNode, Collection, GaussianSummary, GmInstance,
    Instance, Quantum, Weight,
};
use distclass_linalg::{Matrix, Vector};
use proptest::prelude::*;

fn validate<I: Instance>(instance: &I, big: &Classification<I::Summary>) {
    let groups = instance.partition(big);
    assert!(groups.len() <= instance.k(), "too many groups");
    let mut seen = vec![false; big.len()];
    for g in &groups {
        assert!(!g.is_empty(), "empty group");
        for &i in g {
            assert!(!seen[i], "index {i} assigned twice");
            seen[i] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "index dropped");
    if groups.len() > 1 {
        for g in &groups {
            assert!(
                !(g.len() == 1 && big.collection(g[0]).weight.is_quantum()),
                "quantum singleton isolated"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gm_partition_is_always_valid(
        entries in proptest::collection::vec(
            ((-50.0f64..50.0, -50.0f64..50.0), 0.0f64..10.0, 1u64..64),
            1..20,
        ),
        k in 1usize..6,
    ) {
        let inst = GmInstance::new(k).expect("valid k");
        let big: Classification<GaussianSummary> = entries
            .iter()
            .map(|&((x, y), spread, grains)| {
                let mut cov = Matrix::zeros(2, 2);
                cov.add_diagonal(spread);
                Collection::new(
                    GaussianSummary::new(Vector::from([x, y]), cov),
                    Weight::from_grains(grains),
                )
            })
            .collect();
        validate(&inst, &big);
    }

    #[test]
    fn centroid_partition_is_always_valid(
        entries in proptest::collection::vec(
            (proptest::collection::vec(-1e4f64..1e4, 3..=3), 1u64..1_000_000),
            1..24,
        ),
        k in 1usize..8,
    ) {
        let inst = CentroidInstance::new(k).expect("valid k");
        let big: Classification<Vector> = entries
            .iter()
            .map(|(v, grains)| {
                Collection::new(Vector::from(v.clone()), Weight::from_grains(*grains))
            })
            .collect();
        validate(&inst, &big);
    }

    #[test]
    fn gm_node_survives_arbitrary_exchange_schedules(
        ops in proptest::collection::vec((0usize..3, 0usize..3), 1..25),
        values in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 3..=3),
    ) {
        // Drive three GM nodes through an arbitrary schedule; the node's
        // internal validator panics if partition ever misbehaves.
        let inst = Arc::new(GmInstance::new(2).expect("k = 2 is valid"));
        let q = Quantum::new(64);
        let mut nodes: Vec<ClassifierNode<GmInstance>> = values
            .iter()
            .map(|&(x, y)| ClassifierNode::new(Arc::clone(&inst), &Vector::from([x, y]), q))
            .collect();
        for &(from, to) in &ops {
            if from == to {
                continue;
            }
            let msg = nodes[from].split_for_send();
            if !msg.is_empty() {
                nodes[to].receive(msg);
            }
        }
        let total: u64 = nodes
            .iter()
            .map(|n| n.classification().total_weight().grains())
            .sum();
        prop_assert_eq!(total, 3 * 64);
        for n in &nodes {
            prop_assert!(n.classification().len() <= 2);
            for col in n.classification().iter() {
                prop_assert!(col.summary.mean.is_finite());
                prop_assert!(col.summary.cov.is_finite());
            }
        }
    }

    #[test]
    fn em_reduction_model_is_always_finite(
        entries in proptest::collection::vec(
            ((-100.0f64..100.0, -100.0f64..100.0), 0.0f64..100.0, 0.01f64..50.0),
            2..16,
        ),
        k in 1usize..5,
    ) {
        use distclass_core::em::{reduce, EmConfig};
        let comps: Vec<(GaussianSummary, f64)> = entries
            .iter()
            .map(|&((x, y), spread, w)| {
                let mut cov = Matrix::zeros(2, 2);
                cov.add_diagonal(spread);
                (GaussianSummary::new(Vector::from([x, y]), cov), w)
            })
            .collect();
        let out = reduce(&comps, k, &EmConfig::default()).expect("valid EM input");
        for (g, pi) in &out.model {
            prop_assert!(g.mean.is_finite());
            prop_assert!(g.cov.is_finite());
            prop_assert!(pi.is_finite() && *pi >= 0.0);
        }
    }
}
