use std::fmt;

use distclass_linalg::{merge_moments, Matrix, Moments, Vector};

use crate::classification::Classification;
use crate::em::{self, EmConfig};
use crate::error::CoreError;
use crate::instance::{greedy_partition, merge_quantum_singletons, Instance, MixtureSummary};
use crate::mixture::MixtureVector;

/// The natural logarithm of 2π.
const LN_2PI: f64 = 1.837_877_066_409_345_5;

/// A Gaussian collection summary: the weighted mean `μ` and covariance `Σ`
/// of the collection's values. Together with the collection weight this is
/// a weighted Gaussian; a classification of such collections is a Gaussian
/// Mixture (§5.1).
///
/// # Example
///
/// ```
/// use distclass_core::GaussianSummary;
/// use distclass_linalg::{Matrix, Vector};
///
/// let g = GaussianSummary::new(Vector::from(vec![0.0, 0.0]), Matrix::identity(2));
/// let at_mean = g.log_pdf(&Vector::from(vec![0.0, 0.0]), 0.0)?;
/// let away = g.log_pdf(&Vector::from(vec![3.0, 0.0]), 0.0)?;
/// assert!(at_mean > away);
/// # Ok::<(), distclass_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianSummary {
    /// The collection's weighted mean.
    pub mean: Vector,
    /// The collection's weighted covariance (may be singular, e.g. for a
    /// singleton collection it is all zeros).
    pub cov: Matrix,
}

impl GaussianSummary {
    /// Creates a summary from an explicit mean and covariance.
    ///
    /// # Panics
    ///
    /// Panics if `cov` is not square with side `mean.dim()`.
    pub fn new(mean: Vector, cov: Matrix) -> Self {
        assert!(
            cov.rows() == mean.dim() && cov.cols() == mean.dim(),
            "covariance shape does not match mean dimension"
        );
        GaussianSummary { mean, cov }
    }

    /// The summary of a singleton collection: mean = the value, `Σ = 0`.
    pub fn from_point(point: &Vector) -> Self {
        let d = point.dim();
        GaussianSummary {
            mean: point.clone(),
            cov: Matrix::zeros(d, d),
        }
    }

    /// Builds a summary from moment statistics (the weight is carried
    /// separately by the collection).
    pub fn from_moments(m: &Moments) -> Self {
        GaussianSummary {
            mean: m.mean.clone(),
            cov: m.cov.clone(),
        }
    }

    /// Converts to [`Moments`] with the given weight.
    pub fn to_moments(&self, weight: f64) -> Moments {
        Moments {
            weight,
            mean: self.mean.clone(),
            cov: self.cov.clone(),
        }
    }

    /// The dimension of the value space.
    pub fn dim(&self) -> usize {
        self.mean.dim()
    }

    /// The log-density of `N(mean, cov + reg·I)` at `x`.
    ///
    /// `reg` regularizes singular covariances (pass `0.0` for an exact
    /// density of a full-rank Gaussian); an escalating jitter is applied on
    /// top when factorization still fails.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmFailed`] when the covariance cannot be
    /// factorized even with jitter.
    pub fn log_pdf(&self, x: &Vector, reg: f64) -> Result<f64, CoreError> {
        let mut cov = self.cov.clone();
        if reg > 0.0 {
            cov.add_diagonal(reg);
        }
        let chol = cov
            .cholesky_with_jitter(1e-12, 40)
            .map_err(|e| CoreError::EmFailed {
                reason: format!("covariance factorization failed: {e}"),
            })?;
        let maha = chol
            .mahalanobis_sq(x, &self.mean)
            .map_err(|e| CoreError::EmFailed {
                reason: format!("dimension mismatch in log_pdf: {e}"),
            })?;
        let d = self.dim() as f64;
        Ok(-0.5 * (d * LN_2PI + chol.log_det() + maha))
    }

    /// The density of `N(mean, cov + reg·I)` at `x`.
    ///
    /// # Errors
    ///
    /// Same as [`GaussianSummary::log_pdf`].
    pub fn pdf(&self, x: &Vector, reg: f64) -> Result<f64, CoreError> {
        Ok(self.log_pdf(x, reg)?.exp())
    }

    /// `true` when mean and covariance are elementwise within `tol`.
    pub fn approx_eq(&self, other: &GaussianSummary, tol: f64) -> bool {
        self.mean.approx_eq(&other.mean, tol) && self.cov.approx_eq(&other.cov, tol)
    }
}

impl fmt::Display for GaussianSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N(μ={}, tr Σ={:.6})", self.mean, self.cov.trace())
    }
}

/// How [`GmInstance::partition`] reduces an over-full mixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Expectation-Maximization mixture reduction (§5.2, the paper's
    /// choice; covariance-aware).
    #[default]
    Em,
    /// Greedy closest-pair merging by mean distance (Algorithm 2's
    /// centroid strategy applied to Gaussians) — the ablation baseline,
    /// blind to covariance.
    Greedy,
}

/// The Gaussian-Mixture instantiation of the generic algorithm (§5):
/// collections are weighted Gaussians, classifications are Gaussian
/// Mixtures, and `partition` reduces an over-full mixture with
/// Expectation Maximization.
///
/// The summary distance `d_S` is the distance between means, as in the
/// centroid instance (the paper defines `d_S` identically for both).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use distclass_core::{ClassifierNode, GmInstance, Quantum};
/// use distclass_linalg::Vector;
///
/// let inst = Arc::new(GmInstance::new(2)?);
/// let mut node = ClassifierNode::new(inst, &Vector::from(vec![0.0, 1.0]), Quantum::default());
/// assert_eq!(node.classification().len(), 1);
/// # Ok::<(), distclass_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GmInstance {
    k: usize,
    em: EmConfig,
    strategy: PartitionStrategy,
}

impl GmInstance {
    /// Creates a GM instance with collection bound `k` and default EM
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidK`] if `k == 0`.
    pub fn new(k: usize) -> Result<Self, CoreError> {
        Self::with_em_config(k, EmConfig::default())
    }

    /// Creates a GM instance with an explicit EM configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidK`] if `k == 0`.
    pub fn with_em_config(k: usize, em: EmConfig) -> Result<Self, CoreError> {
        if k == 0 {
            return Err(CoreError::InvalidK { k });
        }
        Ok(GmInstance {
            k,
            em,
            strategy: PartitionStrategy::Em,
        })
    }

    /// Selects the partition strategy (builder style); the default is EM.
    pub fn with_partition_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The EM configuration used by `partition`.
    pub fn em_config(&self) -> &EmConfig {
        &self.em
    }

    /// The active partition strategy.
    pub fn partition_strategy(&self) -> PartitionStrategy {
        self.strategy
    }
}

impl Instance for GmInstance {
    type Value = Vector;
    type Summary = GaussianSummary;

    fn k(&self) -> usize {
        self.k
    }

    fn val_to_summary(&self, val: &Vector) -> GaussianSummary {
        GaussianSummary::from_point(val)
    }

    fn merge_set(&self, parts: &[(&GaussianSummary, f64)]) -> GaussianSummary {
        assert!(!parts.is_empty(), "merge_set of empty set");
        let moments: Vec<Moments> = parts.iter().map(|(s, w)| s.to_moments(*w)).collect();
        let merged = merge_moments(moments.iter()).expect("non-empty positive-weight merge");
        GaussianSummary::from_moments(&merged)
    }

    fn partition(&self, big: &Classification<GaussianSummary>) -> Vec<Vec<usize>> {
        if big.len() <= self.k {
            // Nothing to compress; only restriction (2) must be enforced.
            let mut groups: Vec<Vec<usize>> = (0..big.len()).map(|i| vec![i]).collect();
            merge_quantum_singletons(self, big, &mut groups);
            return groups;
        }
        if self.strategy == PartitionStrategy::Greedy {
            return greedy_partition(self, big);
        }
        let components: Vec<(GaussianSummary, f64)> = big
            .iter()
            .map(|c| (c.summary.clone(), c.weight.grains() as f64))
            .collect();
        match em::reduce(&components, self.k, &self.em) {
            Ok(outcome) => {
                let mut groups = outcome.groups;
                merge_quantum_singletons(self, big, &mut groups);
                groups
            }
            // EM can fail on pathological inputs (e.g. all-identical
            // means); greedy merging is always well defined.
            Err(_) => greedy_partition(self, big),
        }
    }

    fn summary_distance(&self, a: &GaussianSummary, b: &GaussianSummary) -> f64 {
        a.mean.distance(&b.mean)
    }

    fn value_from_components(&self, components: &[f64]) -> Option<Vector> {
        Some(Vector::from(components.to_vec()))
    }
}

impl MixtureSummary for GmInstance {
    fn summarize_mixture(&self, values: &[Vector], mixture: &MixtureVector) -> GaussianSummary {
        assert_eq!(values.len(), mixture.len(), "mixture length mismatch");
        let moments: Vec<Moments> = values
            .iter()
            .zip(mixture.components())
            .filter(|&(_, &w)| w > 0.0)
            .map(|(v, &w)| Moments::of_point(v.clone(), w))
            .collect();
        assert!(!moments.is_empty(), "cannot summarize an empty mixture");
        GaussianSummary::from_moments(
            &merge_moments(moments.iter()).expect("non-empty positive-weight merge"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;
    use crate::weight::Weight;

    #[test]
    fn from_point_is_degenerate() {
        let g = GaussianSummary::from_point(&Vector::from([1.0, 2.0]));
        assert_eq!(g.mean.as_slice(), &[1.0, 2.0]);
        assert_eq!(g.cov, Matrix::zeros(2, 2));
        assert_eq!(g.dim(), 2);
    }

    #[test]
    fn log_pdf_standard_normal_at_origin() {
        let g = GaussianSummary::new(Vector::zeros(2), Matrix::identity(2));
        let lp = g.log_pdf(&Vector::zeros(2), 0.0).unwrap();
        assert!((lp - (-LN_2PI)).abs() < 1e-12); // −(d/2)·ln 2π with d = 2
    }

    #[test]
    fn pdf_decreases_with_distance() {
        let g = GaussianSummary::new(Vector::zeros(1), Matrix::identity(1));
        let p0 = g.pdf(&Vector::from([0.0]), 0.0).unwrap();
        let p2 = g.pdf(&Vector::from([2.0]), 0.0).unwrap();
        assert!(p0 > p2);
        assert!((p0 - 1.0 / (2.0 * std::f64::consts::PI).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn log_pdf_of_degenerate_cov_uses_jitter() {
        let g = GaussianSummary::from_point(&Vector::from([1.0]));
        // Still produces a (very sharp) finite density.
        let lp = g.log_pdf(&Vector::from([1.0]), 0.0).unwrap();
        assert!(lp.is_finite());
    }

    #[test]
    fn merge_set_matches_moments_of_union() {
        let inst = GmInstance::new(2).unwrap();
        let a = GaussianSummary::from_point(&Vector::from([0.0]));
        let b = GaussianSummary::from_point(&Vector::from([2.0]));
        let m = inst.merge_set(&[(&a, 1.0), (&b, 1.0)]);
        assert!((m.mean[0] - 1.0).abs() < 1e-12);
        assert!((m.cov[(0, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partition_identity_when_under_k() {
        let inst = GmInstance::new(3).unwrap();
        let big: Classification<GaussianSummary> = [0.0, 5.0]
            .iter()
            .map(|&x| {
                Collection::new(
                    GaussianSummary::from_point(&Vector::from([x])),
                    Weight::from_grains(4),
                )
            })
            .collect();
        let groups = inst.partition(&big);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn partition_reduces_overfull_mixture() {
        let inst = GmInstance::new(2).unwrap();
        // Two tight clusters of Gaussians: {0, 0.2, 0.4} and {10, 10.2}.
        let big: Classification<GaussianSummary> = [0.0, 0.2, 0.4, 10.0, 10.2]
            .iter()
            .map(|&x| {
                Collection::new(
                    GaussianSummary::from_point(&Vector::from([x])),
                    Weight::from_grains(8),
                )
            })
            .collect();
        let groups = inst.partition(&big);
        assert_eq!(groups.len(), 2);
        let g_of = |i: usize| groups.iter().position(|g| g.contains(&i)).unwrap();
        assert_eq!(g_of(0), g_of(1));
        assert_eq!(g_of(1), g_of(2));
        assert_eq!(g_of(3), g_of(4));
        assert_ne!(g_of(0), g_of(3));
    }

    #[test]
    fn summarize_mixture_r2_and_variance() {
        let inst = GmInstance::new(2).unwrap();
        let values = vec![Vector::from([0.0]), Vector::from([2.0])];
        // R2: basis vector gives the singleton summary.
        let f_e0 = inst.summarize_mixture(&values, &MixtureVector::basis(2, 0));
        assert!(f_e0.approx_eq(&inst.val_to_summary(&values[0]), 1e-12));
        // Uniform mixture gives the population moments.
        let f_all =
            inst.summarize_mixture(&values, &MixtureVector::from_components(vec![1.0, 1.0]));
        assert!((f_all.mean[0] - 1.0).abs() < 1e-12);
        assert!((f_all.cov[(0, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_shows_mean() {
        let g = GaussianSummary::new(Vector::zeros(1), Matrix::identity(1));
        assert!(format!("{g}").contains("N(μ="));
    }

    #[test]
    fn gm_instance_validates_k() {
        assert!(matches!(
            GmInstance::new(0),
            Err(CoreError::InvalidK { .. })
        ));
    }
}
