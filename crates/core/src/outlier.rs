//! Outlier removal and robust aggregation on top of Gaussian Mixture
//! classifications (the application of §5.3.2).
//!
//! With `k = 2` every node ends up with (at most) two collections — one for
//! the good values and one for the outliers. The heaviest collection is
//! taken to be the good one; its mean is the *robust mean* estimate that
//! Figures 3 and 4 evaluate.
//!
//! The module also hosts the *robust merge* used against Byzantine
//! senders: [`robust_receive`] screens an incoming classification for
//! non-finite poison and trims collections whose means sit strictly
//! outside a `k·σ` ball around the receiver's good collection before
//! absorbing the rest. Collections exactly **at** the bound are kept — the
//! trimming rule is strict — so an adversary shifting summaries to the
//! documented stealth bound gains nothing extra by landing on it exactly.

use distclass_linalg::Vector;

use crate::classification::Classification;
use crate::error::CoreError;
use crate::gaussian::GaussianSummary;

/// The index of the *good* collection: the one holding the most weight.
///
/// Returns `None` for an empty classification.
pub fn good_collection_index(c: &Classification<GaussianSummary>) -> Option<usize> {
    c.heaviest()
}

/// The robust mean estimate: the mean of the heaviest collection.
///
/// Returns `None` for an empty classification.
///
/// # Example
///
/// ```
/// use distclass_core::{outlier, Classification, Collection, GaussianSummary, Weight};
/// use distclass_linalg::Vector;
///
/// let mut c = Classification::new();
/// c.push(Collection::new(
///     GaussianSummary::from_point(&Vector::from(vec![0.0])),
///     Weight::from_grains(95),
/// ));
/// c.push(Collection::new(
///     GaussianSummary::from_point(&Vector::from(vec![10.0])),
///     Weight::from_grains(5),
/// ));
/// assert_eq!(outlier::robust_mean(&c).unwrap().as_slice(), &[0.0]);
/// ```
pub fn robust_mean(c: &Classification<GaussianSummary>) -> Option<Vector> {
    good_collection_index(c).map(|i| c.collection(i).summary.mean.clone())
}

/// The weighted mean over *all* collections — what plain average
/// aggregation would report, outliers included.
///
/// Returns `None` for an empty classification.
pub fn overall_mean(c: &Classification<GaussianSummary>) -> Option<Vector> {
    if c.is_empty() {
        return None;
    }
    let total = c.total_weight();
    let mut acc = Vector::zeros(c.collection(0).summary.dim());
    for col in c.iter() {
        acc.axpy(col.weight.fraction_of(total), &col.summary.mean);
    }
    Some(acc)
}

/// Associates a new value with a collection by **maximum weighted
/// density** — the Gaussian rule of Figure 1 (the whole point of the GM
/// instance: a wide collection can claim a value that sits closer to a
/// tight collection's mean).
///
/// Returns the collection index, or `None` for an empty classification.
///
/// # Errors
///
/// Propagates density-evaluation failures.
///
/// # Example
///
/// ```
/// use distclass_core::{outlier, Classification, Collection, GaussianSummary, Weight};
/// use distclass_linalg::{Matrix, Vector};
///
/// let mut c = Classification::new();
/// // Tight collection at 0, wide collection at 5.
/// c.push(Collection::new(
///     GaussianSummary::new(Vector::from(vec![0.0]), Matrix::identity(1).scaled(0.05)),
///     Weight::from_grains(10),
/// ));
/// c.push(Collection::new(
///     GaussianSummary::new(Vector::from(vec![5.0]), Matrix::identity(1).scaled(9.0)),
///     Weight::from_grains(10),
/// ));
/// // 2.0 is nearer the tight mean but far likelier under the wide one.
/// assert_eq!(outlier::associate(&c, &Vector::from(vec![2.0]), 0.0)?, Some(1));
/// # Ok::<(), distclass_core::CoreError>(())
/// ```
pub fn associate(
    c: &Classification<GaussianSummary>,
    x: &Vector,
    reg: f64,
) -> Result<Option<usize>, CoreError> {
    if c.is_empty() {
        return Ok(None);
    }
    let total = c.total_weight();
    let mut best = 0;
    let mut best_score = f64::NEG_INFINITY;
    for (i, col) in c.iter().enumerate() {
        let score = col.weight.fraction_of(total).max(1e-300).ln() + col.summary.log_pdf(x, reg)?;
        if score > best_score {
            best_score = score;
            best = i;
        }
    }
    Ok(Some(best))
}

/// Ground-truth outlier test used by the evaluation: a value is an outlier
/// when its density under the reference Gaussian falls below `f_min`
/// (the paper uses `f_min = 5·10⁻⁵` for the standard normal).
///
/// # Errors
///
/// Propagates [`CoreError::EmFailed`] from density evaluation.
pub fn is_density_outlier(
    x: &Vector,
    reference: &GaussianSummary,
    f_min: f64,
) -> Result<bool, CoreError> {
    Ok(reference.pdf(x, 0.0)? < f_min)
}

/// Whether every summary and weight in `c` is made of finite numbers.
///
/// A poisoned wire message can smuggle `NaN`/`±inf` into a mean or
/// covariance; one such value silently corrupts every later merge, so the
/// robust path rejects the whole classification up front.
pub fn is_classification_finite(c: &Classification<GaussianSummary>) -> bool {
    c.iter()
        .all(|col| col.summary.mean.is_finite() && col.summary.cov.is_finite())
}

/// The trimming reference of a classification: the good collection's mean
/// and a scalar spread `σ = sqrt(trace(Σ)/d)` (floored at `1.0` for
/// degenerate point collections, whose covariance is all zeros).
///
/// Returns `None` for an empty classification.
pub fn trim_reference(c: &Classification<GaussianSummary>) -> Option<(Vector, f64)> {
    let good = good_collection_index(c)?;
    let s = &c.collection(good).summary;
    let d = s.dim().max(1) as f64;
    let sigma = (s.cov.trace() / d).sqrt();
    let sigma = if sigma.is_finite() && sigma > 0.0 {
        sigma
    } else {
        1.0
    };
    Some((s.mean.clone(), sigma))
}

/// Outcome of a [`robust_receive`] merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobustOutcome {
    /// Some collections were absorbed; `trimmed` counts the discarded ones.
    Merged {
        /// Collections absorbed into the base classification.
        kept: usize,
        /// Collections discarded as outside the `k·σ` ball.
        trimmed: usize,
    },
    /// The incoming classification carried `NaN`/`±inf` and was dropped
    /// whole, leaving the base untouched.
    RejectedNonFinite,
    /// Nothing to merge: the incoming classification was empty or every
    /// collection was trimmed (the all-adversarial-neighbor degenerate
    /// case). The base is untouched.
    Nothing,
}

/// Robust trimmed merge: screens `incoming` for non-finite values, trims
/// collections whose means lie *strictly* beyond `k_sigma · σ` from the
/// base's good-collection mean, and absorbs the survivors.
///
/// Collections exactly at the bound are kept (the rule is strict), so a
/// stealthy adversary shifting to the bound is handled by weight dilution,
/// not by a knife-edge comparison. When the base is empty there is no
/// reference to trim against and everything finite is absorbed.
///
/// This is the classification-level union only — callers that maintain a
/// `k`-bounded mixture (the classifier node) re-partition afterwards.
pub fn robust_receive(
    base: &mut Classification<GaussianSummary>,
    incoming: Classification<GaussianSummary>,
    k_sigma: f64,
) -> RobustOutcome {
    if incoming.is_empty() {
        return RobustOutcome::Nothing;
    }
    if !is_classification_finite(&incoming) {
        return RobustOutcome::RejectedNonFinite;
    }
    let Some((center, sigma)) = trim_reference(base) else {
        // Empty base: adopt everything.
        let kept = incoming.len();
        base.absorb(incoming);
        return RobustOutcome::Merged { kept, trimmed: 0 };
    };
    let bound = k_sigma * sigma;
    let mut kept = Classification::new();
    let mut trimmed = 0usize;
    for col in incoming.into_collections() {
        if col.summary.mean.distance(&center) <= bound {
            kept.push(col);
        } else {
            trimmed += 1;
        }
    }
    if kept.is_empty() {
        return RobustOutcome::Nothing;
    }
    let n = kept.len();
    base.absorb(kept);
    RobustOutcome::Merged { kept: n, trimmed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;
    use crate::weight::Weight;
    use distclass_linalg::Matrix;

    fn two_collections() -> Classification<GaussianSummary> {
        let mut c = Classification::new();
        c.push(Collection::new(
            GaussianSummary::new(Vector::from([0.0, 0.0]), Matrix::identity(2)),
            Weight::from_grains(95),
        ));
        c.push(Collection::new(
            GaussianSummary::new(Vector::from([0.0, 10.0]), Matrix::identity(2).scaled(0.1)),
            Weight::from_grains(5),
        ));
        c
    }

    #[test]
    fn good_collection_is_heaviest() {
        assert_eq!(good_collection_index(&two_collections()), Some(0));
        assert_eq!(good_collection_index(&Classification::new()), None);
    }

    #[test]
    fn robust_mean_ignores_outlier_collection() {
        let m = robust_mean(&two_collections()).unwrap();
        assert_eq!(m.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn overall_mean_includes_outliers() {
        let m = overall_mean(&two_collections()).unwrap();
        assert!((m[1] - 0.5).abs() < 1e-12); // 5 % of the weight at y = 10
        assert_eq!(overall_mean(&Classification::new()), None);
    }

    #[test]
    fn associate_prefers_likelier_collection() {
        use distclass_linalg::Matrix;
        let mut c = Classification::new();
        c.push(Collection::new(
            GaussianSummary::new(Vector::from([0.0]), Matrix::identity(1).scaled(0.05)),
            Weight::from_grains(10),
        ));
        c.push(Collection::new(
            GaussianSummary::new(Vector::from([5.0]), Matrix::identity(1).scaled(9.0)),
            Weight::from_grains(10),
        ));
        // Figure 1's disagreement point.
        assert_eq!(associate(&c, &Vector::from([2.0]), 0.0).unwrap(), Some(1));
        // Right at the tight mean the tight collection wins.
        assert_eq!(associate(&c, &Vector::from([0.0]), 0.0).unwrap(), Some(0));
        // Empty classification.
        assert_eq!(
            associate(&Classification::new(), &Vector::from([0.0]), 0.0).unwrap(),
            None
        );
    }

    #[test]
    fn associate_respects_mixing_weights() {
        use distclass_linalg::Matrix;
        let g = |w: u64| {
            Collection::new(
                GaussianSummary::new(Vector::from([0.0]), Matrix::identity(1)),
                Weight::from_grains(w),
            )
        };
        let mut heavy_first = Classification::new();
        heavy_first.push(g(99));
        let mut second = Collection::new(
            GaussianSummary::new(Vector::from([0.1]), Matrix::identity(1)),
            Weight::from_grains(1),
        );
        second.summary.mean[0] = 0.1;
        heavy_first.push(second);
        // The probe sits exactly between the two means; the 99× heavier
        // collection wins on mixing weight.
        assert_eq!(
            associate(&heavy_first, &Vector::from([0.05]), 0.0).unwrap(),
            Some(0)
        );
    }

    #[test]
    fn robust_receive_trims_strictly_beyond_bound() {
        let mut base = two_collections();
        let mut incoming = Classification::new();
        // Base good collection: mean 0, identity cov ⇒ σ = 1. One summary
        // exactly at 1.5σ (kept) and one strictly beyond (trimmed).
        incoming.push(Collection::new(
            GaussianSummary::new(Vector::from([1.5, 0.0]), Matrix::identity(2)),
            Weight::from_grains(4),
        ));
        incoming.push(Collection::new(
            GaussianSummary::new(Vector::from([1.6, 0.0]), Matrix::identity(2)),
            Weight::from_grains(4),
        ));
        let out = robust_receive(&mut base, incoming, 1.5);
        assert_eq!(
            out,
            RobustOutcome::Merged {
                kept: 1,
                trimmed: 1
            }
        );
        assert_eq!(base.total_weight().grains(), 104);
    }

    #[test]
    fn robust_receive_into_empty_base_adopts_everything() {
        let mut base = Classification::new();
        let out = robust_receive(&mut base, two_collections(), 1.5);
        assert_eq!(
            out,
            RobustOutcome::Merged {
                kept: 2,
                trimmed: 0
            }
        );
        assert_eq!(base.len(), 2);
    }

    #[test]
    fn trim_reference_floors_degenerate_sigma() {
        let mut base = Classification::new();
        base.push(Collection::new(
            GaussianSummary::from_point(&Vector::from([0.0, 0.0])),
            Weight::from_grains(8),
        ));
        let (_, sigma) = trim_reference(&base).unwrap();
        assert_eq!(sigma, 1.0);
        assert_eq!(trim_reference(&Classification::new()), None);
    }

    #[test]
    fn density_outlier_threshold() {
        let std_normal = GaussianSummary::new(Vector::zeros(2), Matrix::identity(2));
        let near = Vector::from([0.5, 0.5]);
        let far = Vector::from([5.0, 5.0]);
        assert!(!is_density_outlier(&near, &std_normal, 5e-5).unwrap());
        assert!(is_density_outlier(&far, &std_normal, 5e-5).unwrap());
    }
}
