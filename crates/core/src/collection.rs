use std::fmt;

use crate::mixture::MixtureVector;
use crate::weight::Weight;

/// A collection as the algorithm stores it: a summary, the collection's
/// quantized weight, and (optionally) the auxiliary mixture-space vector of
/// §4.2 used to audit the run.
///
/// The paper overloads the word *collection* for both the abstract set of
/// weighted values and its summary–weight representation; this type is the
/// latter. The underlying value set is never materialized — that is the
/// whole point of the algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct Collection<S> {
    /// The application-specific summary of the underlying weighted values.
    pub summary: S,
    /// The collection's total weight (a multiple of the quantum `q`).
    pub weight: Weight,
    /// Auxiliary mixture vector (`None` outside audited runs).
    pub aux: Option<MixtureVector>,
}

impl<S> Collection<S> {
    /// Creates a collection without auxiliary tracking.
    pub fn new(summary: S, weight: Weight) -> Self {
        Collection {
            summary,
            weight,
            aux: None,
        }
    }

    /// Creates a collection with an auxiliary mixture vector.
    pub fn with_aux(summary: S, weight: Weight, aux: MixtureVector) -> Self {
        Collection {
            summary,
            weight,
            aux: Some(aux),
        }
    }
}

impl<S: Clone> Collection<S> {
    /// Splits this collection into `(kept, sent)` with identical summaries
    /// and complementary weights per the paper's `half` function; the
    /// auxiliary vector (if any) is scaled by the same ratios.
    ///
    /// The sent part is `None` when the collection's weight is a single
    /// grain (nothing can be sent without violating quantization).
    pub fn split(&self) -> (Collection<S>, Option<Collection<S>>) {
        let (keep_w, send_w) = self.weight.split();
        let ratio = if self.weight.is_zero() {
            0.5
        } else {
            keep_w.grains() as f64 / self.weight.grains() as f64
        };
        let kept = Collection {
            summary: self.summary.clone(),
            weight: keep_w,
            aux: self.aux.as_ref().map(|a| a.scaled(ratio)),
        };
        if send_w.is_zero() {
            return (kept, None);
        }
        let sent = Collection {
            summary: self.summary.clone(),
            weight: send_w,
            aux: self.aux.as_ref().map(|a| a.scaled(1.0 - ratio)),
        };
        (kept, Some(sent))
    }
}

impl<S: fmt::Display> fmt::Display for Collection<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.summary, self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_conserves_weight_and_aux() {
        let c = Collection::with_aux("s", Weight::from_grains(5), MixtureVector::basis(2, 0));
        let (kept, sent) = c.split();
        let sent = sent.unwrap();
        assert_eq!(kept.weight + sent.weight, c.weight);
        assert_eq!(kept.summary, "s");
        assert_eq!(sent.summary, "s");
        let total = kept.aux.unwrap().plus(&sent.aux.unwrap());
        assert!((total.component(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn split_of_single_grain_sends_nothing() {
        let c: Collection<&str> = Collection::new("s", Weight::from_grains(1));
        let (kept, sent) = c.split();
        assert!(sent.is_none());
        assert_eq!(kept.weight.grains(), 1);
    }

    #[test]
    fn aux_ratio_matches_weight_ratio() {
        let c = Collection::with_aux((), Weight::from_grains(3), MixtureVector::basis(1, 0));
        let (kept, sent) = c.split();
        // keep = 2 grains of 3 → aux scaled by 2/3.
        assert!((kept.aux.unwrap().component(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((sent.unwrap().aux.unwrap().component(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_shows_summary_and_weight() {
        let c = Collection::new(42, Weight::from_grains(2));
        assert_eq!(format!("{c}"), "⟨42, 2g⟩");
    }
}
