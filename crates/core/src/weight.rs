use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// The weight quantum `q` of the algorithm, represented as a number of
/// *grains per unit* so that all weight arithmetic is exact.
///
/// The paper quantizes weights to multiples of a system parameter `q`
/// (`q ≪ 1/n`) to rule out Zeno-style executions in which finite weight is
/// transferred in infinitely many infinitesimal pieces. We take this
/// seriously: a [`Weight`] is an integer number of grains, so system-wide
/// weight conservation holds *exactly* and is asserted in tests.
///
/// # Example
///
/// ```
/// use distclass_core::Quantum;
///
/// let q = Quantum::new(1 << 20);
/// let one = q.unit();
/// assert_eq!(q.to_f64(one), 1.0);
/// assert_eq!(q.q(), 1.0 / (1u64 << 20) as f64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Quantum {
    grains_per_unit: u64,
}

impl Quantum {
    /// Creates a quantum with the given number of grains per unit weight
    /// (`q = 1 / grains_per_unit`).
    ///
    /// # Panics
    ///
    /// Panics if `grains_per_unit == 0`.
    pub fn new(grains_per_unit: u64) -> Self {
        assert!(grains_per_unit > 0, "quantum needs at least one grain");
        Quantum { grains_per_unit }
    }

    /// Grains per unit weight.
    pub fn grains_per_unit(&self) -> u64 {
        self.grains_per_unit
    }

    /// The quantum `q` as a float.
    pub fn q(&self) -> f64 {
        1.0 / self.grains_per_unit as f64
    }

    /// The weight `1` (a whole input value).
    pub fn unit(&self) -> Weight {
        Weight {
            grains: self.grains_per_unit,
        }
    }

    /// Converts a weight to its float value under this quantum.
    pub fn to_f64(&self, w: Weight) -> f64 {
        w.grains as f64 / self.grains_per_unit as f64
    }
}

impl Default for Quantum {
    /// The default quantum, `q = 2⁻²⁰` — comfortably below `1/n` for any
    /// simulated network in this workspace.
    fn default() -> Self {
        Quantum::new(1 << 20)
    }
}

impl fmt::Display for Quantum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q=1/{}", self.grains_per_unit)
    }
}

/// An exact, quantized collection weight: an integer number of grains.
///
/// Weights support only the operations the algorithm needs — addition
/// (merging) and halving (splitting) — so weight can never be created or
/// destroyed by arithmetic, only moved.
///
/// # Example
///
/// ```
/// use distclass_core::Weight;
///
/// let w = Weight::from_grains(5);
/// let (keep, send) = w.split();
/// assert_eq!(keep + send, w); // conservation, exactly
/// assert_eq!(keep.grains(), 3);
/// assert_eq!(send.grains(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Weight {
    grains: u64,
}

impl Weight {
    /// The zero weight.
    pub const ZERO: Weight = Weight { grains: 0 };

    /// Creates a weight of `grains` grains.
    pub fn from_grains(grains: u64) -> Self {
        Weight { grains }
    }

    /// The number of grains.
    pub fn grains(&self) -> u64 {
        self.grains
    }

    /// `true` when the weight is zero.
    pub fn is_zero(&self) -> bool {
        self.grains == 0
    }

    /// `true` when the weight is exactly one grain (the quantum `q`).
    ///
    /// The `partition` function must never leave such a collection alone in
    /// its own merge set (paper §4.1, restriction (2)).
    pub fn is_quantum(&self) -> bool {
        self.grains == 1
    }

    /// Splits the weight into `(kept, sent)` halves per the paper's `half`
    /// function: each part is a multiple of `q` as close as possible to
    /// half, and the parts sum exactly to the original.
    ///
    /// An odd grain count leaves the extra grain on the kept side; in
    /// particular a single-grain weight keeps everything and sends nothing
    /// (the closest multiple of `q` to `q/2` is taken to be `0` on the
    /// sending side), so quantum-weight collections are simply not split.
    pub fn split(self) -> (Weight, Weight) {
        let keep = self.grains.div_ceil(2);
        (
            Weight { grains: keep },
            Weight {
                grains: self.grains - keep,
            },
        )
    }

    /// The fraction `self / total` as a float.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn fraction_of(&self, total: Weight) -> f64 {
        assert!(!total.is_zero(), "fraction of zero total weight");
        self.grains as f64 / total.grains as f64
    }
}

impl Add for Weight {
    type Output = Weight;

    fn add(self, rhs: Weight) -> Weight {
        Weight {
            grains: self
                .grains
                .checked_add(rhs.grains)
                .expect("weight overflow"),
        }
    }
}

impl AddAssign for Weight {
    fn add_assign(&mut self, rhs: Weight) {
        *self = *self + rhs;
    }
}

impl Sum for Weight {
    fn sum<I: Iterator<Item = Weight>>(iter: I) -> Weight {
        iter.fold(Weight::ZERO, Add::add)
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}g", self.grains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantum_unit_roundtrip() {
        let q = Quantum::new(1000);
        assert_eq!(q.to_f64(q.unit()), 1.0);
        assert_eq!(q.q(), 0.001);
        assert_eq!(q.unit().grains(), 1000);
    }

    #[test]
    fn default_quantum_is_tiny() {
        let q = Quantum::default();
        assert!(q.q() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one grain")]
    fn zero_quantum_rejected() {
        let _ = Quantum::new(0);
    }

    #[test]
    fn split_conserves_exactly() {
        for grains in [0u64, 1, 2, 3, 5, 8, 1_000_001] {
            let w = Weight::from_grains(grains);
            let (a, b) = w.split();
            assert_eq!(a + b, w);
            // Parts are as equal as quantization allows.
            assert!(a.grains() - b.grains() <= 1);
            assert!(a >= b);
        }
    }

    #[test]
    fn split_of_quantum_keeps_everything() {
        let (keep, send) = Weight::from_grains(1).split();
        assert_eq!(keep.grains(), 1);
        assert!(send.is_zero());
    }

    #[test]
    fn is_quantum_only_for_one_grain() {
        assert!(Weight::from_grains(1).is_quantum());
        assert!(!Weight::from_grains(2).is_quantum());
        assert!(!Weight::ZERO.is_quantum());
    }

    #[test]
    fn sum_and_fraction() {
        let total: Weight = [1u64, 2, 3].into_iter().map(Weight::from_grains).sum();
        assert_eq!(total.grains(), 6);
        assert_eq!(Weight::from_grains(3).fraction_of(total), 0.5);
    }

    #[test]
    #[should_panic(expected = "weight overflow")]
    fn overflow_panics() {
        let _ = Weight::from_grains(u64::MAX) + Weight::from_grains(1);
    }

    #[test]
    #[should_panic(expected = "fraction of zero")]
    fn fraction_of_zero_panics() {
        let _ = Weight::from_grains(1).fraction_of(Weight::ZERO);
    }

    #[test]
    fn ordering_matches_grains() {
        assert!(Weight::from_grains(2) > Weight::from_grains(1));
        assert_eq!(Weight::ZERO, Weight::default());
    }
}
