use std::error::Error;
use std::fmt;

/// Errors from configuring or running the classification algorithm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The collection bound `k` must be at least 1.
    InvalidK {
        /// The rejected value.
        k: usize,
    },
    /// A configuration parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// Expectation Maximization could not produce a usable model (e.g. all
    /// covariance regularization attempts failed).
    EmFailed {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidK { k } => write!(f, "invalid collection bound k = {k}"),
            CoreError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter {name}: must satisfy {constraint}")
            }
            CoreError::EmFailed { reason } => {
                write!(f, "expectation maximization failed: {reason}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            CoreError::InvalidK { k: 0 },
            CoreError::InvalidParameter {
                name: "reg",
                constraint: "reg > 0",
            },
            CoreError::EmFailed {
                reason: "degenerate".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
