//! Convergence measurement (Definition 3 made operational).
//!
//! The paper's convergence notion matches each collection of a
//! classification to a destination collection so that summaries and
//! relative weights converge. For measurement we use the induced
//! weight-aware distance between two classifications: every collection is
//! matched to the *nearest* collection of the other classification, and
//! mismatch is accumulated proportionally to weight. This is a pseudometric
//! (distance zero does not force structural identity — e.g. a collection
//! split into two halves with equal summaries is at distance zero, exactly
//! as Definition 3 intends).

use crate::classification::Classification;
use crate::instance::Instance;

/// The weight-aware asymmetric mismatch from `a` to `b`: the
/// weight-fraction-weighted mean distance from each collection of `a` to
/// its nearest collection in `b`.
///
/// Returns 0 when `a` is empty and ∞ when only `b` is empty.
pub fn directed_distance<I: Instance>(
    instance: &I,
    a: &Classification<I::Summary>,
    b: &Classification<I::Summary>,
) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    if b.is_empty() {
        return f64::INFINITY;
    }
    let total = a.total_weight();
    let mut acc = 0.0;
    for ca in a.iter() {
        let nearest = b
            .iter()
            .map(|cb| instance.summary_distance(&ca.summary, &cb.summary))
            .fold(f64::INFINITY, f64::min);
        acc += ca.weight.fraction_of(total) * nearest;
    }
    acc
}

/// The symmetric classification distance: the maximum of the two directed
/// distances.
///
/// # Example
///
/// ```
/// use distclass_core::{convergence, CentroidInstance, Classification, Collection, Weight};
/// use distclass_linalg::Vector;
///
/// let inst = CentroidInstance::new(2)?;
/// let single = |x: f64| -> Classification<Vector> {
///     let mut c = Classification::new();
///     c.push(Collection::new(Vector::from(vec![x]), Weight::from_grains(4)));
///     c
/// };
/// let d = convergence::distance(&inst, &single(0.0), &single(3.0));
/// assert_eq!(d, 3.0);
/// assert_eq!(convergence::distance(&inst, &single(1.0), &single(1.0)), 0.0);
/// # Ok::<(), distclass_core::CoreError>(())
/// ```
pub fn distance<I: Instance>(
    instance: &I,
    a: &Classification<I::Summary>,
    b: &Classification<I::Summary>,
) -> f64 {
    directed_distance(instance, a, b).max(directed_distance(instance, b, a))
}

/// The dispersion of a set of classifications: the maximum distance from
/// the first classification to any other. Zero dispersion means all nodes
/// agree (up to the pseudometric).
pub fn dispersion<'a, I, It>(instance: &I, classifications: It) -> f64
where
    I: Instance,
    I::Summary: 'a,
    It: IntoIterator<Item = &'a Classification<I::Summary>>,
{
    let mut iter = classifications.into_iter();
    let Some(first) = iter.next() else { return 0.0 };
    iter.map(|c| distance(instance, first, c))
        .fold(0.0, f64::max)
}

/// Tracks a sliding window of per-round dispersion (or error) values and
/// reports convergence when the window is full and its spread is below a
/// threshold.
///
/// # Example
///
/// ```
/// use distclass_core::convergence::StabilityDetector;
///
/// let mut det = StabilityDetector::new(3, 0.01);
/// det.observe(5.0);
/// det.observe(5.001);
/// assert!(!det.is_stable());
/// det.observe(5.002);
/// assert!(det.is_stable());
/// ```
#[derive(Debug, Clone)]
pub struct StabilityDetector {
    window: usize,
    threshold: f64,
    history: Vec<f64>,
}

impl StabilityDetector {
    /// Creates a detector requiring `window` consecutive observations whose
    /// spread (max − min) stays below `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `threshold < 0`.
    pub fn new(window: usize, threshold: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(threshold >= 0.0, "threshold must be non-negative");
        StabilityDetector {
            window,
            threshold,
            history: Vec::new(),
        }
    }

    /// Records an observation.
    pub fn observe(&mut self, value: f64) {
        self.history.push(value);
        if self.history.len() > self.window {
            self.history.remove(0);
        }
    }

    /// `true` when the last `window` observations are within `threshold` of
    /// each other.
    pub fn is_stable(&self) -> bool {
        if self.history.len() < self.window {
            return false;
        }
        let max = self
            .history
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = self.history.iter().cloned().fold(f64::INFINITY, f64::min);
        max - min <= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centroid::CentroidInstance;
    use crate::collection::Collection;
    use crate::weight::Weight;
    use distclass_linalg::Vector;

    fn cls(entries: &[(f64, u64)]) -> Classification<Vector> {
        entries
            .iter()
            .map(|&(x, g)| Collection::new(Vector::from([x]), Weight::from_grains(g)))
            .collect()
    }

    #[test]
    fn distance_zero_for_split_equivalent() {
        let inst = CentroidInstance::new(4).unwrap();
        // Same summary split into two collections: Definition 3 distance 0.
        let a = cls(&[(1.0, 8)]);
        let b = cls(&[(1.0, 4), (1.0, 4)]);
        assert_eq!(distance(&inst, &a, &b), 0.0);
    }

    #[test]
    fn distance_weighted_by_mass() {
        let inst = CentroidInstance::new(4).unwrap();
        let a = cls(&[(0.0, 9), (10.0, 1)]);
        let b = cls(&[(0.0, 10)]);
        // Only the light collection (10 % of a's weight) is 10 away.
        assert!((directed_distance(&inst, &a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(directed_distance(&inst, &b, &a), 0.0);
        assert!((distance(&inst, &a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_conventions() {
        let inst = CentroidInstance::new(4).unwrap();
        let e = Classification::<Vector>::new();
        let a = cls(&[(0.0, 1)]);
        assert_eq!(directed_distance(&inst, &e, &a), 0.0);
        assert_eq!(directed_distance(&inst, &a, &e), f64::INFINITY);
    }

    #[test]
    fn dispersion_over_agreeing_nodes_is_zero() {
        let inst = CentroidInstance::new(4).unwrap();
        let nodes = [cls(&[(2.0, 4)]), cls(&[(2.0, 8)]), cls(&[(2.0, 2)])];
        assert_eq!(dispersion(&inst, nodes.iter()), 0.0);
    }

    #[test]
    fn dispersion_detects_disagreement() {
        let inst = CentroidInstance::new(4).unwrap();
        let nodes = [cls(&[(0.0, 4)]), cls(&[(3.0, 4)])];
        assert_eq!(dispersion(&inst, nodes.iter()), 3.0);
    }

    #[test]
    fn stability_detector_requires_full_window() {
        let mut det = StabilityDetector::new(2, 0.1);
        assert!(!det.is_stable());
        det.observe(1.0);
        assert!(!det.is_stable());
        det.observe(1.05);
        assert!(det.is_stable());
        det.observe(2.0);
        assert!(!det.is_stable());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn stability_detector_rejects_zero_window() {
        let _ = StabilityDetector::new(0, 0.1);
    }
}
