use std::fmt;

use crate::collection::Collection;
use crate::weight::Weight;

/// A classification: the (bounded) set of weighted collection summaries a
/// node maintains, and the unit the algorithm sends over links.
///
/// # Example
///
/// ```
/// use distclass_core::{Classification, Collection, Weight};
///
/// let mut c = Classification::new();
/// c.push(Collection::new(1.5_f64, Weight::from_grains(4)));
/// c.push(Collection::new(7.0_f64, Weight::from_grains(2)));
/// assert_eq!(c.total_weight().grains(), 6);
///
/// let sent = c.split_off_half();
/// assert_eq!(c.total_weight().grains() + sent.total_weight().grains(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Classification<S> {
    collections: Vec<Collection<S>>,
}

impl<S> Default for Classification<S> {
    fn default() -> Self {
        Classification::new()
    }
}

impl<S> Classification<S> {
    /// Creates an empty classification.
    pub fn new() -> Self {
        Classification {
            collections: Vec::new(),
        }
    }

    /// The number of collections.
    pub fn len(&self) -> usize {
        self.collections.len()
    }

    /// `true` when there are no collections.
    pub fn is_empty(&self) -> bool {
        self.collections.is_empty()
    }

    /// Adds a collection.
    ///
    /// # Panics
    ///
    /// Panics if the collection has zero weight — zero-weight collections
    /// describe nothing and must never circulate.
    pub fn push(&mut self, collection: Collection<S>) {
        assert!(
            !collection.weight.is_zero(),
            "zero-weight collection pushed into classification"
        );
        self.collections.push(collection);
    }

    /// The collections.
    pub fn collections(&self) -> &[Collection<S>] {
        &self.collections
    }

    /// The collection at `index`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn collection(&self, index: usize) -> &Collection<S> {
        &self.collections[index]
    }

    /// Iterates over collections.
    pub fn iter(&self) -> std::slice::Iter<'_, Collection<S>> {
        self.collections.iter()
    }

    /// The sum of collection weights.
    pub fn total_weight(&self) -> Weight {
        self.collections.iter().map(|c| c.weight).sum()
    }

    /// Moves all collections of `other` into `self` (the `bigSet` union of
    /// Algorithm 1, line 9).
    pub fn absorb(&mut self, other: Classification<S>) {
        self.collections.extend(other.collections);
    }

    /// Consumes the classification, returning its collections.
    pub fn into_collections(self) -> Vec<Collection<S>> {
        self.collections
    }

    /// Decays every collection by the exact fraction `num / den` of its
    /// grains (rounded down per collection), returning the total number
    /// of grains removed — the *forgotten* mass of the windowed merge
    /// variant. Collections whose weight reaches zero are dropped, so no
    /// zero-weight collection ever circulates; auxiliary vectors are
    /// scaled by the surviving ratio, mirroring [`Collection::split`].
    ///
    /// Integer-exact: the caller can account the returned grain count
    /// against an external ledger and conservation still balances to the
    /// grain.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero or `num > den` (a decay fraction above 1
    /// would mint negative weight).
    pub fn decay(&mut self, num: u64, den: u64) -> u64 {
        assert!(den > 0, "decay denominator must be nonzero");
        assert!(num <= den, "decay fraction must not exceed 1");
        let mut forgotten = 0u64;
        self.collections.retain_mut(|c| {
            let grains = c.weight.grains();
            let cut = grains * num / den;
            forgotten += cut;
            let left = grains - cut;
            if left == 0 {
                return false;
            }
            if cut > 0 {
                if let Some(aux) = c.aux.as_mut() {
                    *aux = aux.scaled(left as f64 / grains as f64);
                }
                c.weight = Weight::from_grains(left);
            }
            true
        });
        forgotten
    }

    /// The index of the collection with the largest weight, or `None` when
    /// empty (ties broken toward the lower index).
    pub fn heaviest(&self) -> Option<usize> {
        self.collections
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.weight.cmp(&b.weight).then(ib.cmp(ia)))
            .map(|(i, _)| i)
    }
}

impl<S: Clone> Classification<S> {
    /// Splits per Algorithm 1 (lines 5–7): every collection is halved;
    /// `self` keeps one half and the complement is returned for sending.
    ///
    /// Collections whose weight is a single grain stay whole on the kept
    /// side, so the sent classification may have fewer collections (or be
    /// empty).
    pub fn split_off_half(&mut self) -> Classification<S> {
        let mut kept = Vec::with_capacity(self.collections.len());
        let mut sent = Vec::with_capacity(self.collections.len());
        for c in self.collections.drain(..) {
            let (k, s) = c.split();
            kept.push(k);
            if let Some(s) = s {
                sent.push(s);
            }
        }
        self.collections = kept;
        Classification { collections: sent }
    }
}

impl<S> FromIterator<Collection<S>> for Classification<S> {
    fn from_iter<T: IntoIterator<Item = Collection<S>>>(iter: T) -> Self {
        Classification {
            collections: iter.into_iter().collect(),
        }
    }
}

impl<S> IntoIterator for Classification<S> {
    type Item = Collection<S>;
    type IntoIter = std::vec::IntoIter<Collection<S>>;

    fn into_iter(self) -> Self::IntoIter {
        self.collections.into_iter()
    }
}

impl<'a, S> IntoIterator for &'a Classification<S> {
    type Item = &'a Collection<S>;
    type IntoIter = std::slice::Iter<'a, Collection<S>>;

    fn into_iter(self) -> Self::IntoIter {
        self.collections.iter()
    }
}

impl<S> Extend<Collection<S>> for Classification<S> {
    fn extend<T: IntoIterator<Item = Collection<S>>>(&mut self, iter: T) {
        self.collections.extend(iter);
    }
}

impl<S: fmt::Display> fmt::Display for Classification<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.collections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classification(weights: &[u64]) -> Classification<u32> {
        weights
            .iter()
            .enumerate()
            .map(|(i, &g)| Collection::new(i as u32, Weight::from_grains(g)))
            .collect()
    }

    #[test]
    fn total_weight_sums() {
        let c = classification(&[1, 2, 3]);
        assert_eq!(c.total_weight().grains(), 6);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn split_conserves_total() {
        let mut c = classification(&[5, 8, 1]);
        let before = c.total_weight();
        let sent = c.split_off_half();
        assert_eq!(c.total_weight() + sent.total_weight(), before);
        // The single-grain collection is not sent.
        assert_eq!(c.len(), 3);
        assert_eq!(sent.len(), 2);
    }

    #[test]
    fn absorb_unions() {
        let mut a = classification(&[2]);
        let b = classification(&[3, 4]);
        a.absorb(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.total_weight().grains(), 9);
    }

    #[test]
    fn heaviest_finds_max() {
        let c = classification(&[2, 9, 3]);
        assert_eq!(c.heaviest(), Some(1));
        assert_eq!(Classification::<u32>::new().heaviest(), None);
    }

    #[test]
    fn heaviest_tie_breaks_low_index() {
        let c = classification(&[5, 5]);
        assert_eq!(c.heaviest(), Some(0));
    }

    #[test]
    fn decay_is_integer_exact_and_drops_emptied_collections() {
        let mut c = classification(&[8, 5, 1]);
        // Half decay: cuts of 4, 2 and 0 grains respectively.
        let forgotten = c.decay(1, 2);
        assert_eq!(forgotten, 6);
        assert_eq!(c.total_weight().grains(), 14 - 6);
        assert_eq!(c.len(), 3, "no collection emptied at 1/2 decay");
        // Full decay empties everything.
        let forgotten = c.decay(1, 1);
        assert_eq!(forgotten, 8);
        assert!(c.is_empty());
    }

    #[test]
    fn decay_zero_fraction_is_noop() {
        let mut c = classification(&[3, 4]);
        assert_eq!(c.decay(0, 7), 0);
        assert_eq!(c.total_weight().grains(), 7);
    }

    #[test]
    #[should_panic(expected = "must not exceed 1")]
    fn decay_rejects_fraction_above_one() {
        let mut c = classification(&[2]);
        c.decay(3, 2);
    }

    #[test]
    #[should_panic(expected = "zero-weight collection")]
    fn push_rejects_zero_weight() {
        let mut c = Classification::new();
        c.push(Collection::new(0u32, Weight::ZERO));
    }

    #[test]
    fn display_lists_collections() {
        let c = classification(&[1, 2]);
        assert_eq!(format!("{c}"), "{⟨0, 1g⟩, ⟨1, 2g⟩}");
    }
}
