//! Expectation-Maximization mixture reduction (§5.2).
//!
//! When a node accumulates more than `k` Gaussian collections it must merge
//! some of them. Maximum-likelihood reduction of an `l`-component mixture
//! to `k` components is NP-hard, so — following the paper — we approximate
//! it with EM. The variant here clusters *weighted Gaussian components*
//! (not raw points): the E-step scores each input component `i` against
//! each model component `j` by the expected log-likelihood
//!
//! ```text
//! E_{x~N(μᵢ,Σᵢ)}[ log N(x; μⱼ, Σⱼ) ] = log N(μᵢ; μⱼ, Σⱼ) − ½ tr(Σⱼ⁻¹ Σᵢ)
//! ```
//!
//! and the M-step moment-matches each model component to its responsibility-
//! weighted inputs. Raw points are the special case `Σᵢ = 0`, which makes
//! [`fit_points`] a standard weighted GMM fit — exactly what the
//! centralized EM baseline uses.

use distclass_linalg::{merge_moments, Moments};

use crate::error::CoreError;
use crate::gaussian::GaussianSummary;

const LN_2PI: f64 = 1.837_877_066_409_345_5;

/// Tunables for EM mixture reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct EmConfig {
    /// Maximum EM iterations per reduction.
    pub max_iters: usize,
    /// Stop when no model mean moves more than this between iterations.
    pub tol: f64,
    /// Diagonal regularization added to model covariances before
    /// factorization (keeps singleton-born zero covariances usable).
    pub reg: f64,
}

impl Default for EmConfig {
    /// `max_iters = 30`, `tol = 1e-6`, `reg = 1e-6`.
    fn default() -> Self {
        EmConfig {
            max_iters: 30,
            tol: 1e-6,
            reg: 1e-6,
        }
    }
}

impl EmConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when a field is out of range.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.max_iters == 0 {
            return Err(CoreError::InvalidParameter {
                name: "max_iters",
                constraint: "max_iters >= 1",
            });
        }
        if self.tol <= 0.0 || self.tol.is_nan() {
            return Err(CoreError::InvalidParameter {
                name: "tol",
                constraint: "tol > 0",
            });
        }
        if self.reg <= 0.0 || self.reg.is_nan() {
            return Err(CoreError::InvalidParameter {
                name: "reg",
                constraint: "reg > 0",
            });
        }
        Ok(())
    }
}

/// The result of an EM reduction.
#[derive(Debug, Clone)]
pub struct EmOutcome {
    /// Hard assignment groups: `groups[g]` holds the indices of input
    /// components assigned to the same model component. Empty groups are
    /// dropped, so `groups.len() <= k`, and every input index appears in
    /// exactly one group.
    pub groups: Vec<Vec<usize>>,
    /// The fitted model as `(summary, mixing weight)` pairs; mixing
    /// weights sum to 1.
    pub model: Vec<(GaussianSummary, f64)>,
    /// EM iterations executed.
    pub iterations: usize,
}

/// Reduces `components` (summary, positive weight) to at most `k` groups.
///
/// Deterministic: seeding picks the heaviest component first, then
/// repeatedly the component maximizing weight × squared distance to the
/// nearest seed (a deterministic k-means++ analogue).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] on an invalid configuration, an
/// empty input or non-positive weights, [`CoreError::InvalidK`] for
/// `k == 0`, and [`CoreError::EmFailed`] if covariance factorization fails
/// irrecoverably.
///
/// # Example
///
/// ```
/// use distclass_core::{em, GaussianSummary};
/// use distclass_linalg::Vector;
///
/// let comps: Vec<(GaussianSummary, f64)> = [0.0, 0.1, 5.0, 5.1]
///     .iter()
///     .map(|&x| (GaussianSummary::from_point(&Vector::from(vec![x])), 1.0))
///     .collect();
/// let out = em::reduce(&comps, 2, &em::EmConfig::default())?;
/// assert_eq!(out.groups.len(), 2);
/// # Ok::<(), distclass_core::CoreError>(())
/// ```
pub fn reduce(
    components: &[(GaussianSummary, f64)],
    k: usize,
    cfg: &EmConfig,
) -> Result<EmOutcome, CoreError> {
    cfg.validate()?;
    if k == 0 {
        return Err(CoreError::InvalidK { k });
    }
    if components.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "components",
            constraint: "at least one component",
        });
    }
    if components.iter().any(|(_, w)| !(*w > 0.0 && w.is_finite())) {
        return Err(CoreError::InvalidParameter {
            name: "components",
            constraint: "all weights positive and finite",
        });
    }

    let l = components.len();
    let total_weight: f64 = components.iter().map(|(_, w)| w).sum();
    if l <= k {
        return Ok(EmOutcome {
            groups: (0..l).map(|i| vec![i]).collect(),
            model: components
                .iter()
                .map(|(s, w)| (s.clone(), w / total_weight))
                .collect(),
            iterations: 0,
        });
    }

    let global = global_moments(components);
    let mut model = seed_model(components, k, &global, cfg);

    let mut resp = e_step(components, &model, cfg)?;
    let mut iterations = 0;
    for _ in 0..cfg.max_iters {
        iterations += 1;
        let new_model = m_step(components, &resp, &model, &global, total_weight, cfg);
        let shift = model
            .iter()
            .zip(new_model.iter())
            .map(|((a, _), (b, _))| a.mean.distance(&b.mean))
            .fold(0.0, f64::max);
        model = new_model;
        resp = e_step(components, &model, cfg)?;
        if shift < cfg.tol {
            break;
        }
    }

    // Hard assignment by maximum responsibility.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); model.len()];
    for (i, r) in resp.iter().enumerate() {
        let j = argmax(r);
        groups[j].push(i);
    }
    groups.retain(|g| !g.is_empty());

    Ok(EmOutcome {
        groups,
        model,
        iterations,
    })
}

/// Fits a `k`-component Gaussian Mixture to weighted *points* — classic
/// weighted EM for GMMs, realized as [`reduce`] over zero-covariance
/// components. Used by the centralized baseline.
///
/// # Errors
///
/// Same as [`reduce`].
pub fn fit_points(
    points: &[distclass_linalg::Vector],
    weights: &[f64],
    k: usize,
    cfg: &EmConfig,
) -> Result<EmOutcome, CoreError> {
    if points.len() != weights.len() {
        return Err(CoreError::InvalidParameter {
            name: "weights",
            constraint: "one weight per point",
        });
    }
    let components: Vec<(GaussianSummary, f64)> = points
        .iter()
        .zip(weights.iter())
        .map(|(p, &w)| (GaussianSummary::from_point(p), w))
        .collect();
    reduce(&components, k, cfg)
}

fn global_moments(components: &[(GaussianSummary, f64)]) -> Moments {
    let moments: Vec<Moments> = components.iter().map(|(s, w)| s.to_moments(*w)).collect();
    merge_moments(moments.iter()).expect("non-empty components")
}

fn seed_model(
    components: &[(GaussianSummary, f64)],
    k: usize,
    global: &Moments,
    cfg: &EmConfig,
) -> Vec<(GaussianSummary, f64)> {
    let mut seeds: Vec<usize> = Vec::with_capacity(k);
    let heaviest = components
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
        .map(|(i, _)| i)
        .expect("non-empty components");
    seeds.push(heaviest);
    while seeds.len() < k {
        let (mut best_i, mut best_score) = (0, -1.0);
        for (i, (s, w)) in components.iter().enumerate() {
            if seeds.contains(&i) {
                continue;
            }
            let dmin = seeds
                .iter()
                .map(|&j| s.mean.distance(&components[j].0.mean))
                .fold(f64::INFINITY, f64::min);
            let score = w * dmin * dmin;
            if score > best_score {
                best_score = score;
                best_i = i;
            }
        }
        seeds.push(best_i);
    }
    // Isotropic sliver of the global spread: degenerate (zero-covariance)
    // seeds must still attract their neighborhoods, but blending the full
    // global covariance would import its correlation structure and can
    // produce a near-singular ridge metric (observed on diagonally
    // correlated inputs), so only the average variance is used.
    let iso = 0.05 * global.cov.trace() / global.mean.dim() as f64;
    seeds
        .into_iter()
        .map(|i| {
            let mut cov = components[i].0.cov.clone();
            cov.add_diagonal(iso + cfg.reg);
            (
                GaussianSummary::new(components[i].0.mean.clone(), cov),
                1.0 / k as f64,
            )
        })
        .collect()
}

/// Computes responsibilities `r[i][j]` of model component `j` for input
/// component `i`, normalized per `i` in log space.
fn e_step(
    components: &[(GaussianSummary, f64)],
    model: &[(GaussianSummary, f64)],
    cfg: &EmConfig,
) -> Result<Vec<Vec<f64>>, CoreError> {
    struct Pre {
        chol: distclass_linalg::Cholesky,
        inv: distclass_linalg::Matrix,
        log_pi: f64,
        log_det: f64,
    }
    let d = components[0].0.dim() as f64;
    let mut pre = Vec::with_capacity(model.len());
    for (summary, pi) in model {
        let mut cov = summary.cov.clone();
        cov.add_diagonal(cfg.reg);
        let chol = cov
            .cholesky_with_jitter(cfg.reg, 40)
            .map_err(|e| CoreError::EmFailed {
                reason: format!("model covariance factorization failed: {e}"),
            })?;
        let inv = chol.inverse().map_err(|e| CoreError::EmFailed {
            reason: format!("model covariance inversion failed: {e}"),
        })?;
        let log_det = chol.log_det();
        pre.push(Pre {
            chol,
            inv,
            log_pi: pi.max(1e-300).ln(),
            log_det,
        });
    }

    let mut resp = Vec::with_capacity(components.len());
    for (s, _) in components {
        let mut scores = Vec::with_capacity(model.len());
        for (p, (m, _)) in pre.iter().zip(model.iter()) {
            let maha =
                p.chol
                    .mahalanobis_sq(&s.mean, &m.mean)
                    .map_err(|e| CoreError::EmFailed {
                        reason: format!("dimension mismatch in E-step: {e}"),
                    })?;
            let trace_term = trace_product(&p.inv, &s.cov);
            scores.push(p.log_pi - 0.5 * (d * LN_2PI + p.log_det + maha + trace_term));
        }
        resp.push(log_normalize(&scores));
    }
    Ok(resp)
}

/// Moment-matches each model component to its responsibility-weighted
/// inputs; starved components are reseeded to the worst-explained input.
fn m_step(
    components: &[(GaussianSummary, f64)],
    resp: &[Vec<f64>],
    model: &[(GaussianSummary, f64)],
    global: &Moments,
    total_weight: f64,
    cfg: &EmConfig,
) -> Vec<(GaussianSummary, f64)> {
    let k = model.len();
    let mut out = Vec::with_capacity(k);
    for j in 0..k {
        let parts: Vec<Moments> = components
            .iter()
            .zip(resp.iter())
            .filter(|(_, r)| r[j] > 1e-12)
            .map(|((s, w), r)| s.to_moments(w * r[j]))
            .collect();
        let wj: f64 = parts.iter().map(|m| m.weight).sum();
        if parts.is_empty() || wj < 1e-9 * total_weight {
            // Starved component: reseed at the input explained worst by the
            // current model (lowest maximum responsibility).
            let worst = components
                .iter()
                .enumerate()
                .min_by(|(ia, _), (ib, _)| {
                    let ma = resp[*ia].iter().cloned().fold(0.0, f64::max);
                    let mb = resp[*ib].iter().cloned().fold(0.0, f64::max);
                    ma.total_cmp(&mb)
                })
                .map(|(i, _)| i)
                .expect("non-empty components");
            let iso = 0.05 * global.cov.trace() / global.mean.dim() as f64;
            let mut cov = components[worst].0.cov.clone();
            cov.add_diagonal(iso + cfg.reg);
            out.push((
                GaussianSummary::new(components[worst].0.mean.clone(), cov),
                1.0 / total_weight.max(1.0),
            ));
            continue;
        }
        let merged = merge_moments(parts.iter()).expect("non-empty positive-weight merge");
        out.push((GaussianSummary::from_moments(&merged), wj / total_weight));
    }
    out
}

/// `tr(A · B)` for square matrices of equal side.
fn trace_product(a: &distclass_linalg::Matrix, b: &distclass_linalg::Matrix) -> f64 {
    debug_assert_eq!(a.rows(), b.rows());
    let n = a.rows();
    let mut t = 0.0;
    for i in 0..n {
        for j in 0..n {
            t += a[(i, j)] * b[(j, i)];
        }
    }
    t
}

/// Converts log scores to a normalized probability vector (log-sum-exp).
fn log_normalize(scores: &[f64]) -> Vec<f64> {
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        // All components scored −∞; fall back to uniform.
        return vec![1.0 / scores.len() as f64; scores.len()];
    }
    let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use distclass_linalg::{Matrix, Vector};

    fn point(x: f64, y: f64) -> (GaussianSummary, f64) {
        (GaussianSummary::from_point(&Vector::from([x, y])), 1.0)
    }

    #[test]
    fn reduce_separates_two_clusters() {
        let comps = vec![
            point(0.0, 0.0),
            point(0.1, 0.1),
            point(-0.1, 0.0),
            point(10.0, 10.0),
            point(10.1, 9.9),
        ];
        let out = reduce(&comps, 2, &EmConfig::default()).unwrap();
        assert_eq!(out.groups.len(), 2);
        let g_of = |i: usize| out.groups.iter().position(|g| g.contains(&i)).unwrap();
        assert_eq!(g_of(0), g_of(1));
        assert_eq!(g_of(0), g_of(2));
        assert_eq!(g_of(3), g_of(4));
        assert_ne!(g_of(0), g_of(3));
        // Mixing weights reflect the 3/2 split.
        let w_big = out.model[g_of_model(&out, 0)].1;
        assert!((w_big - 0.6).abs() < 0.05, "mixing weight {w_big}");
    }

    /// Maps an input component to the model index of its group.
    fn g_of_model(out: &EmOutcome, i: usize) -> usize {
        // Groups correspond positionally to retained model components only
        // when none were dropped; for these tests k is fully used.
        out.groups.iter().position(|g| g.contains(&i)).unwrap()
    }

    #[test]
    fn reduce_identity_when_l_leq_k() {
        let comps = vec![point(0.0, 0.0), point(5.0, 5.0)];
        let out = reduce(&comps, 4, &EmConfig::default()).unwrap();
        assert_eq!(out.groups, vec![vec![0], vec![1]]);
        assert_eq!(out.iterations, 0);
        let total_pi: f64 = out.model.iter().map(|(_, p)| p).sum();
        assert!((total_pi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reduce_respects_weights() {
        // A heavy component pulls the model mean toward itself.
        let comps = vec![
            (GaussianSummary::from_point(&Vector::from([0.0])), 9.0),
            (GaussianSummary::from_point(&Vector::from([1.0])), 1.0),
            (GaussianSummary::from_point(&Vector::from([0.2])), 9.0),
        ];
        let out = reduce(&comps, 1, &EmConfig::default()).unwrap();
        assert_eq!(out.groups.len(), 1);
        let mean = out.model[0].0.mean[0];
        assert!((mean - (9.0 * 0.0 + 1.0 + 9.0 * 0.2) / 19.0).abs() < 1e-6);
    }

    #[test]
    fn reduce_uses_covariance_not_just_means() {
        // Figure 1's moral: a point nearer to A's mean can belong to B if B
        // is much wider.
        let tight = GaussianSummary::new(Vector::from([0.0]), Matrix::diagonal(&[0.01]));
        let wide = GaussianSummary::new(Vector::from([4.0]), Matrix::diagonal(&[9.0]));
        let probe = GaussianSummary::from_point(&Vector::from([1.5]));
        let comps = vec![(tight, 10.0), (wide, 10.0), (probe, 1.0)];
        let out = reduce(&comps, 2, &EmConfig::default()).unwrap();
        let g_of = |i: usize| out.groups.iter().position(|g| g.contains(&i)).unwrap();
        assert_eq!(g_of(2), g_of(1), "probe should join the wide Gaussian");
    }

    #[test]
    fn reduce_rejects_bad_input() {
        assert!(matches!(
            reduce(&[], 2, &EmConfig::default()),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            reduce(&[point(0.0, 0.0)], 0, &EmConfig::default()),
            Err(CoreError::InvalidK { .. })
        ));
        let neg = vec![(GaussianSummary::from_point(&Vector::from([0.0])), -1.0)];
        assert!(matches!(
            reduce(&neg, 1, &EmConfig::default()),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn config_validation() {
        let bad_iters = EmConfig {
            max_iters: 0,
            ..EmConfig::default()
        };
        assert!(bad_iters.validate().is_err());
        let bad_tol = EmConfig {
            tol: 0.0,
            ..EmConfig::default()
        };
        assert!(bad_tol.validate().is_err());
        let bad_reg = EmConfig {
            reg: -1.0,
            ..EmConfig::default()
        };
        assert!(bad_reg.validate().is_err());
        assert!(EmConfig::default().validate().is_ok());
    }

    #[test]
    fn identical_means_do_not_crash() {
        let comps = vec![point(1.0, 1.0); 5];
        let out = reduce(&comps, 2, &EmConfig::default()).unwrap();
        let total: usize = out.groups.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn fit_points_recovers_two_gaussians() {
        // Deterministic grid of points from two well-separated blobs.
        let mut points = Vec::new();
        for i in 0..20 {
            let t = (i as f64 - 9.5) / 10.0;
            points.push(Vector::from([t, 0.0]));
            points.push(Vector::from([t + 20.0, 0.0]));
        }
        let weights = vec![1.0; points.len()];
        let out = fit_points(&points, &weights, 2, &EmConfig::default()).unwrap();
        assert_eq!(out.groups.len(), 2);
        let mut means: Vec<f64> = out.model.iter().map(|(s, _)| s.mean[0]).collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((means[0] - 0.0).abs() < 0.2);
        assert!((means[1] - 20.0).abs() < 0.2);
    }

    #[test]
    fn fit_points_validates_weight_length() {
        assert!(matches!(
            fit_points(&[Vector::from([0.0])], &[], 1, &EmConfig::default()),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn log_normalize_handles_extremes() {
        let r = log_normalize(&[-1e10, 0.0]);
        assert!(r[1] > 0.999);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let uniform = log_normalize(&[f64::NEG_INFINITY, f64::NEG_INFINITY]);
        assert_eq!(uniform, vec![0.5, 0.5]);
    }

    #[test]
    fn trace_product_matches_direct() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        assert_eq!(trace_product(&a, &b), a.mul_mat(&b).trace());
    }
}
