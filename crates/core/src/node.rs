use std::sync::Arc;

use crate::classification::Classification;
use crate::collection::Collection;
use crate::instance::Instance;
use crate::mixture::MixtureVector;
use crate::weight::{Quantum, Weight};

/// A node's state machine for the generic distributed classification
/// algorithm (Algorithm 1).
///
/// The node holds a classification of weighted collection summaries.
/// [`ClassifierNode::split_for_send`] implements lines 3–7 (halve every
/// collection, keep one half, return the other for sending);
/// [`ClassifierNode::receive`] implements lines 8–11 (union with the
/// incoming classification, partition, merge each group).
///
/// The node is transport-agnostic: the gossip runtime decides *when* to
/// split and *whom* to send to. All application-specific behavior lives in
/// the [`Instance`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use distclass_core::{CentroidInstance, ClassifierNode, Quantum};
/// use distclass_linalg::Vector;
///
/// let inst = Arc::new(CentroidInstance::new(2)?);
/// let q = Quantum::default();
/// let mut a = ClassifierNode::new(Arc::clone(&inst), &Vector::from(vec![0.0]), q);
/// let mut b = ClassifierNode::new(inst, &Vector::from(vec![2.0]), q);
///
/// // One gossip exchange: a sends half its weight to b.
/// let msg = a.split_for_send();
/// b.receive(msg);
/// assert_eq!(b.classification().len(), 2);
/// # Ok::<(), distclass_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClassifierNode<I: Instance> {
    instance: Arc<I>,
    classification: Classification<I::Summary>,
}

impl<I: Instance> ClassifierNode<I> {
    /// Creates a node holding input value `val` at weight 1 (line 2 of
    /// Algorithm 1), without auxiliary tracking.
    pub fn new(instance: Arc<I>, val: &I::Value, quantum: Quantum) -> Self {
        let summary = instance.val_to_summary(val);
        let mut classification = Classification::new();
        classification.push(Collection::new(summary, quantum.unit()));
        ClassifierNode {
            instance,
            classification,
        }
    }

    /// Creates a node with auxiliary mixture-vector tracking enabled: the
    /// initial collection carries the basis vector `e_index` over
    /// `n_values` inputs (§4.2's auxiliary algorithm).
    pub fn new_audited(
        instance: Arc<I>,
        val: &I::Value,
        quantum: Quantum,
        n_values: usize,
        index: usize,
    ) -> Self {
        let summary = instance.val_to_summary(val);
        let mut classification = Classification::new();
        classification.push(Collection::with_aux(
            summary,
            quantum.unit(),
            MixtureVector::basis(n_values, index),
        ));
        ClassifierNode {
            instance,
            classification,
        }
    }

    /// Rebuilds a node around a previously captured classification — the
    /// crash-recovery path: a respawned peer resumes from its checkpoint
    /// instead of its initial reading. The classification is adopted
    /// verbatim; callers are responsible for it having come from a node
    /// of the same instance.
    pub fn from_classification(
        instance: Arc<I>,
        classification: Classification<I::Summary>,
    ) -> Self {
        ClassifierNode {
            instance,
            classification,
        }
    }

    /// The instance this node runs.
    pub fn instance(&self) -> &Arc<I> {
        &self.instance
    }

    /// The node's current classification (its output at every time `t`).
    pub fn classification(&self) -> &Classification<I::Summary> {
        &self.classification
    }

    /// Splits the classification in half (lines 5–7): the node keeps one
    /// half and the returned half is meant to be sent to a neighbor.
    ///
    /// The returned classification can be empty if every collection has
    /// quantum weight; sending an empty classification is a harmless no-op.
    pub fn split_for_send(&mut self) -> Classification<I::Summary> {
        self.classification.split_off_half()
    }

    /// Handles an incoming classification (lines 8–11): unions it with the
    /// local one, partitions the result with the instance's `partition`,
    /// and merges each group with `mergeSet`.
    pub fn receive(&mut self, incoming: Classification<I::Summary>) {
        self.classification.absorb(incoming);
        self.repartition();
    }

    /// Takes the node's entire classification, leaving it empty — a
    /// graceful retirement's handoff. The caller owns every grain now;
    /// a failed handoff must [`receive`](Self::receive) them back.
    pub fn take_classification(&mut self) -> Classification<I::Summary> {
        std::mem::take(&mut self.classification)
    }

    /// Re-reads the node's sensor: decays the current classification by
    /// the exact fraction `decay_num / decay_den` (the forgetting window
    /// of a dynamic workload) and injects a fresh unit-weight collection
    /// built from the new reading, then repartitions.
    ///
    /// Returns `(injected, forgotten)` grain counts, both integer-exact,
    /// so the caller's conservation ledger can extend its balance to
    /// `final = initial + gains + injected − losses − forgotten`.
    pub fn refresh_reading(
        &mut self,
        val: &I::Value,
        quantum: Quantum,
        decay_num: u64,
        decay_den: u64,
    ) -> (u64, u64) {
        let forgotten = self.classification.decay(decay_num, decay_den);
        let summary = self.instance.val_to_summary(val);
        let unit = quantum.unit();
        self.classification.push(Collection::new(summary, unit));
        self.repartition();
        (unit.grains(), forgotten)
    }

    /// Handles several incoming classifications at once, running
    /// `partition` a single time for the entire accumulated set — the
    /// batching the paper's simulations use when a node hears from multiple
    /// neighbors in one round.
    pub fn receive_batch(
        &mut self,
        incoming: impl IntoIterator<Item = Classification<I::Summary>>,
    ) {
        let mut any = false;
        for c in incoming {
            self.classification.absorb(c);
            any = true;
        }
        if any {
            self.repartition();
        }
    }

    fn repartition(&mut self) {
        let big = std::mem::take(&mut self.classification);
        let groups = self.instance.partition(&big);
        validate_groups::<I>(&self.instance, &big, &groups);

        let collections = big.into_collections();
        let mut taken: Vec<Option<Collection<I::Summary>>> =
            collections.into_iter().map(Some).collect();
        let mut merged = Classification::new();
        for group in &groups {
            let members: Vec<Collection<I::Summary>> = group
                .iter()
                .map(|&i| taken[i].take().expect("group indices are unique"))
                .collect();
            if members.len() == 1 {
                let mut it = members;
                merged.push(it.pop().expect("one member"));
                continue;
            }
            let weight: Weight = members.iter().map(|c| c.weight).sum();
            let parts: Vec<(&I::Summary, f64)> = members
                .iter()
                .map(|c| (&c.summary, c.weight.grains() as f64))
                .collect();
            let summary = self.instance.merge_set(&parts);
            let aux = merge_aux(&members);
            match aux {
                Some(aux) => merged.push(Collection::with_aux(summary, weight, aux)),
                None => merged.push(Collection::new(summary, weight)),
            }
        }
        self.classification = merged;
    }
}

fn merge_aux<S>(members: &[Collection<S>]) -> Option<MixtureVector> {
    let mut iter = members.iter();
    let mut acc = iter.next()?.aux.clone()?;
    for m in iter {
        acc.add_assign(m.aux.as_ref()?);
    }
    Some(acc)
}

fn validate_groups<I: Instance>(
    instance: &I,
    big: &Classification<I::Summary>,
    groups: &[Vec<usize>],
) {
    assert!(
        groups.len() <= instance.k(),
        "partition produced {} groups, k = {}",
        groups.len(),
        instance.k()
    );
    let mut seen = vec![false; big.len()];
    for g in groups {
        assert!(!g.is_empty(), "partition produced an empty group");
        for &i in g {
            assert!(i < big.len(), "partition index {i} out of range");
            assert!(!seen[i], "partition assigned index {i} twice");
            seen[i] = true;
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "partition did not cover all collections"
    );
    if groups.len() > 1 {
        for g in groups {
            assert!(
                !(g.len() == 1 && big.collection(g[0]).weight.is_quantum()),
                "partition left a quantum-weight collection alone"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centroid::CentroidInstance;
    use distclass_linalg::Vector;

    fn node(inst: &Arc<CentroidInstance>, x: f64) -> ClassifierNode<CentroidInstance> {
        ClassifierNode::new(Arc::clone(inst), &Vector::from([x]), Quantum::new(8))
    }

    #[test]
    fn initial_state_is_own_value() {
        let inst = Arc::new(CentroidInstance::new(3).unwrap());
        let n = node(&inst, 2.5);
        assert_eq!(n.classification().len(), 1);
        let c = n.classification().collection(0);
        assert_eq!(c.weight.grains(), 8);
        assert_eq!(c.summary.as_slice(), &[2.5]);
    }

    #[test]
    fn split_then_receive_conserves_weight() {
        let inst = Arc::new(CentroidInstance::new(3).unwrap());
        let mut a = node(&inst, 0.0);
        let mut b = node(&inst, 1.0);
        let msg = a.split_for_send();
        assert_eq!(msg.total_weight().grains(), 4);
        assert_eq!(a.classification().total_weight().grains(), 4);
        b.receive(msg);
        assert_eq!(b.classification().total_weight().grains(), 12);
    }

    #[test]
    fn k_bound_forces_merging() {
        let inst = Arc::new(CentroidInstance::new(2).unwrap());
        let mut target = node(&inst, 0.0);
        for x in [1.0, 2.0, 3.0, 4.0] {
            let mut peer = node(&inst, x);
            target.receive(peer.split_for_send());
        }
        assert!(target.classification().len() <= 2);
        // All weight accounted for: own 8 + 4 × 4 sent halves.
        assert_eq!(target.classification().total_weight().grains(), 24);
    }

    #[test]
    fn receive_batch_partitions_once() {
        let inst = Arc::new(CentroidInstance::new(2).unwrap());
        let mut target = node(&inst, 0.0);
        let msgs: Vec<_> = [10.0, 20.0, 30.0]
            .iter()
            .map(|&x| node(&inst, x).split_for_send())
            .collect();
        target.receive_batch(msgs);
        assert!(target.classification().len() <= 2);
        assert_eq!(target.classification().total_weight().grains(), 8 + 3 * 4);
    }

    #[test]
    fn receive_batch_empty_is_noop() {
        let inst = Arc::new(CentroidInstance::new(2).unwrap());
        let mut n = node(&inst, 1.0);
        let before = n.classification().clone();
        n.receive_batch(Vec::new());
        assert_eq!(n.classification(), &before);
    }

    #[test]
    fn refresh_reading_balances_injected_against_forgotten() {
        let inst = Arc::new(CentroidInstance::new(2).unwrap());
        let q = Quantum::new(8);
        let mut n = node(&inst, 0.0);
        let before = n.classification().total_weight().grains();
        let (injected, forgotten) = n.refresh_reading(&Vector::from([5.0]), q, 1, 2);
        assert_eq!(injected, 8);
        assert_eq!(forgotten, 4);
        assert_eq!(
            n.classification().total_weight().grains(),
            before + injected - forgotten
        );
        // The fresh reading dominates: the heaviest centroid sits at 5.
        let heavy = n.classification().heaviest().unwrap();
        let c = n.classification().collection(heavy);
        assert!((c.summary.as_slice()[0] - 5.0).abs() < 2.0);
    }

    #[test]
    fn refresh_reading_with_full_decay_replaces_state() {
        let inst = Arc::new(CentroidInstance::new(2).unwrap());
        let q = Quantum::new(8);
        let mut n = node(&inst, 0.0);
        let (injected, forgotten) = n.refresh_reading(&Vector::from([9.0]), q, 1, 1);
        assert_eq!(injected, 8);
        assert_eq!(forgotten, 8);
        assert_eq!(n.classification().len(), 1);
        assert_eq!(n.classification().collection(0).summary.as_slice(), &[9.0]);
    }

    #[test]
    fn from_classification_restores_state_verbatim() {
        let inst = Arc::new(CentroidInstance::new(3).unwrap());
        let mut a = node(&inst, 2.0);
        let mut b = node(&inst, 5.0);
        a.receive(b.split_for_send());
        let snapshot = a.classification().clone();
        let restored = ClassifierNode::from_classification(Arc::clone(&inst), snapshot.clone());
        assert_eq!(restored.classification(), &snapshot);
        assert_eq!(
            restored.classification().total_weight().grains(),
            a.classification().total_weight().grains()
        );
    }

    #[test]
    fn audited_node_carries_basis_vector() {
        let inst = Arc::new(CentroidInstance::new(2).unwrap());
        let n = ClassifierNode::new_audited(inst, &Vector::from([1.0]), Quantum::new(8), 5, 3);
        let aux = n.classification().collection(0).aux.as_ref().unwrap();
        assert_eq!(aux.component(3), 1.0);
        assert_eq!(aux.norm_l1(), 1.0);
    }

    #[test]
    fn aux_flows_through_split_and_merge() {
        let inst = Arc::new(CentroidInstance::new(2).unwrap());
        let q = Quantum::new(8);
        let mut a = ClassifierNode::new_audited(Arc::clone(&inst), &Vector::from([0.0]), q, 2, 0);
        let mut b = ClassifierNode::new_audited(inst, &Vector::from([0.1]), q, 2, 1);
        let msg = a.split_for_send();
        b.receive(msg);
        // With k=2 and close values the partition may or may not merge; the
        // total aux over b's collections must equal e1 + 0.5 e0.
        let mut total = MixtureVector::zeros(2);
        for c in b.classification().iter() {
            total.add_assign(c.aux.as_ref().unwrap());
        }
        assert!((total.component(0) - 0.5).abs() < 1e-12);
        assert!((total.component(1) - 1.0).abs() < 1e-12);
    }
}
