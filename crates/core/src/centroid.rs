use distclass_linalg::Vector;

use crate::classification::Classification;
use crate::error::CoreError;
use crate::instance::{greedy_partition, Instance, MixtureSummary};
use crate::mixture::MixtureVector;

/// The centroid instantiation of the generic algorithm (Algorithm 2): a
/// collection is summarized by its centroid (the weighted average of its
/// values) and merging greedily joins the closest centroids — the
/// distributed analogue of k-means.
///
/// # Example
///
/// ```
/// use distclass_core::{CentroidInstance, Instance};
/// use distclass_linalg::Vector;
///
/// let inst = CentroidInstance::new(3)?;
/// let a = Vector::from(vec![0.0, 0.0]);
/// let b = Vector::from(vec![2.0, 0.0]);
/// let merged = inst.merge_set(&[(&a, 1.0), (&b, 1.0)]);
/// assert_eq!(merged.as_slice(), &[1.0, 0.0]);
/// # Ok::<(), distclass_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CentroidInstance {
    k: usize,
}

impl CentroidInstance {
    /// Creates a centroid instance with collection bound `k`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidK`] if `k == 0`.
    pub fn new(k: usize) -> Result<Self, CoreError> {
        if k == 0 {
            return Err(CoreError::InvalidK { k });
        }
        Ok(CentroidInstance { k })
    }
}

impl Instance for CentroidInstance {
    type Value = Vector;
    type Summary = Vector;

    fn k(&self) -> usize {
        self.k
    }

    fn val_to_summary(&self, val: &Vector) -> Vector {
        val.clone()
    }

    fn merge_set(&self, parts: &[(&Vector, f64)]) -> Vector {
        assert!(!parts.is_empty(), "merge_set of empty set");
        let total: f64 = parts.iter().map(|(_, w)| w).sum();
        let mut acc = Vector::zeros(parts[0].0.dim());
        for (s, w) in parts {
            acc.axpy(w / total, s);
        }
        acc
    }

    fn partition(&self, big: &Classification<Vector>) -> Vec<Vec<usize>> {
        greedy_partition(self, big)
    }

    fn summary_distance(&self, a: &Vector, b: &Vector) -> f64 {
        a.distance(b)
    }

    fn value_from_components(&self, components: &[f64]) -> Option<Vector> {
        Some(Vector::from(components.to_vec()))
    }
}

impl MixtureSummary for CentroidInstance {
    fn summarize_mixture(&self, values: &[Vector], mixture: &MixtureVector) -> Vector {
        assert_eq!(values.len(), mixture.len(), "mixture length mismatch");
        let total = mixture.norm_l1();
        assert!(total > 0.0, "cannot summarize an empty mixture");
        let mut acc = Vector::zeros(values[0].dim());
        for (val, &w) in values.iter().zip(mixture.components()) {
            if w != 0.0 {
                acc.axpy(w / total, val);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;
    use crate::weight::Weight;

    #[test]
    fn new_validates_k() {
        assert_eq!(CentroidInstance::new(0), Err(CoreError::InvalidK { k: 0 }));
        assert!(CentroidInstance::new(1).is_ok());
    }

    #[test]
    fn merge_set_weighted_average() {
        let inst = CentroidInstance::new(2).unwrap();
        let a = Vector::from([0.0, 0.0]);
        let b = Vector::from([4.0, 8.0]);
        let m = inst.merge_set(&[(&a, 3.0), (&b, 1.0)]);
        assert!(m.approx_eq(&Vector::from([1.0, 2.0]), 1e-12));
    }

    #[test]
    fn merge_set_scale_invariant_r3() {
        let inst = CentroidInstance::new(2).unwrap();
        let a = Vector::from([1.0]);
        let b = Vector::from([3.0]);
        let m1 = inst.merge_set(&[(&a, 1.0), (&b, 2.0)]);
        let m2 = inst.merge_set(&[(&a, 10.0), (&b, 20.0)]);
        assert!(m1.approx_eq(&m2, 1e-12));
    }

    #[test]
    fn partition_groups_nearby_centroids() {
        let inst = CentroidInstance::new(2).unwrap();
        let big: Classification<Vector> = [(0.0, 4u64), (0.2, 4), (9.0, 4), (9.1, 4)]
            .iter()
            .map(|&(x, g)| Collection::new(Vector::from([x]), Weight::from_grains(g)))
            .collect();
        let mut groups = inst.partition(&big);
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort();
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn summarize_mixture_matches_val_to_summary_r2() {
        let inst = CentroidInstance::new(2).unwrap();
        let values = vec![Vector::from([1.0]), Vector::from([5.0])];
        let e0 = MixtureVector::basis(2, 0);
        let f_e0 = inst.summarize_mixture(&values, &e0);
        assert!(f_e0.approx_eq(&inst.val_to_summary(&values[0]), 1e-12));
    }

    #[test]
    fn summarize_mixture_scale_invariant_r3() {
        let inst = CentroidInstance::new(2).unwrap();
        let values = vec![Vector::from([1.0]), Vector::from([5.0])];
        let v = MixtureVector::from_components(vec![0.25, 0.75]);
        let f1 = inst.summarize_mixture(&values, &v);
        let f2 = inst.summarize_mixture(&values, &v.scaled(8.0));
        assert!(f1.approx_eq(&f2, 1e-12));
    }
}
