use std::fmt;

/// A vector in the paper's *mixture space* `R^n`: component `j` is the
/// amount of input value `j`'s weight contained in a collection.
///
/// Mixture vectors are the auxiliary bookkeeping of §4.2: they are never
/// sent in a real deployment, but carrying them alongside summaries lets
/// tests and experiments verify Lemma 1 (`f(c.aux) = c.summary`,
/// `‖c.aux‖₁ = c.weight`) and measure exactly how each input value's weight
/// was distributed among collections (e.g. the missed-outlier accounting of
/// Figure 3).
///
/// # Example
///
/// ```
/// use distclass_core::MixtureVector;
///
/// let e0 = MixtureVector::basis(3, 0);
/// let e1 = MixtureVector::basis(3, 1);
/// let sum = e0.plus(&e1);
/// assert_eq!(sum.norm_l1(), 2.0);
/// // Orthogonal basis vectors are 90° apart in the mixture space.
/// assert!((e0.angle(&e1) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MixtureVector {
    components: Vec<f64>,
}

impl MixtureVector {
    /// The zero vector over `n` input values.
    pub fn zeros(n: usize) -> Self {
        MixtureVector {
            components: vec![0.0; n],
        }
    }

    /// The basis vector `e_i` — the initial auxiliary of node `i`, whose
    /// collection holds exactly its own input value at weight 1.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn basis(n: usize, i: usize) -> Self {
        assert!(i < n, "basis index {i} out of range for {n} values");
        let mut v = MixtureVector::zeros(n);
        v.components[i] = 1.0;
        v
    }

    /// Creates a mixture vector from explicit per-value weights.
    pub fn from_components(components: Vec<f64>) -> Self {
        MixtureVector { components }
    }

    /// The number of input values (`n`).
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` when the vector covers zero input values.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The weight of input value `j` within this collection.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn component(&self, j: usize) -> f64 {
        self.components[j]
    }

    /// A borrowed view of all components.
    pub fn components(&self) -> &[f64] {
        &self.components
    }

    /// The L1 norm — by Lemma 1 this equals the collection's weight.
    pub fn norm_l1(&self) -> f64 {
        self.components.iter().map(|x| x.abs()).sum()
    }

    /// The L2 norm.
    pub fn norm_l2(&self) -> f64 {
        self.components.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Returns `self` scaled by `s` (used when splitting a collection:
    /// the kept auxiliary is scaled by `half(w)/w`, the sent one by the
    /// complement).
    pub fn scaled(&self, s: f64) -> MixtureVector {
        MixtureVector {
            components: self.components.iter().map(|x| x * s).collect(),
        }
    }

    /// Component-wise sum (the auxiliary of a merged collection).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn plus(&self, other: &MixtureVector) -> MixtureVector {
        assert_eq!(self.len(), other.len(), "mixture length mismatch");
        MixtureVector {
            components: self
                .components
                .iter()
                .zip(other.components.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Adds `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn add_assign(&mut self, other: &MixtureVector) {
        assert_eq!(self.len(), other.len(), "mixture length mismatch");
        for (a, b) in self.components.iter_mut().zip(other.components.iter()) {
            *a += b;
        }
    }

    /// Returns the vector normalized to unit L1 norm, or `None` for the
    /// zero vector.
    pub fn normalized(&self) -> Option<MixtureVector> {
        let n = self.norm_l1();
        if n == 0.0 {
            return None;
        }
        Some(self.scaled(1.0 / n))
    }

    /// The angle between two mixture vectors — the paper's distance `d_M`.
    ///
    /// Returns a value in `[0, π]`; zero-length vectors are at angle `π/2`
    /// from everything by convention.
    pub fn angle(&self, other: &MixtureVector) -> f64 {
        let denom = self.norm_l2() * other.norm_l2();
        if denom == 0.0 {
            return std::f64::consts::FRAC_PI_2;
        }
        let mut cos = self
            .components
            .iter()
            .zip(other.components.iter())
            .map(|(a, b)| a * b)
            .sum::<f64>()
            / denom;
        cos = cos.clamp(-1.0, 1.0);
        cos.acos()
    }

    /// The `i`-th *reference angle* `ϕᵥᵢ` — the angle between this vector
    /// and the `i`-th axis — which the convergence proof shows to be
    /// monotonically bounded.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn reference_angle(&self, i: usize) -> f64 {
        assert!(i < self.len(), "reference axis out of range");
        let norm = self.norm_l2();
        if norm == 0.0 {
            return std::f64::consts::FRAC_PI_2;
        }
        (self.components[i] / norm).clamp(-1.0, 1.0).acos()
    }
}

impl fmt::Display for MixtureVector {
    /// Compact display eliding zero components, which dominate large
    /// sparse mixtures.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (j, &x) in self.components.iter().enumerate() {
            if x != 0.0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{j}: {x:.6}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_properties() {
        let e2 = MixtureVector::basis(4, 2);
        assert_eq!(e2.norm_l1(), 1.0);
        assert_eq!(e2.norm_l2(), 1.0);
        assert_eq!(e2.component(2), 1.0);
        assert_eq!(e2.component(0), 0.0);
        assert_eq!(e2.reference_angle(2), 0.0);
    }

    #[test]
    fn split_scaling_conserves_l1() {
        let v = MixtureVector::from_components(vec![0.5, 0.25, 0.0, 1.0]);
        let kept = v.scaled(0.6);
        let sent = v.scaled(0.4);
        let total = kept.plus(&sent);
        assert!((total.norm_l1() - v.norm_l1()).abs() < 1e-12);
        for j in 0..v.len() {
            assert!((total.component(j) - v.component(j)).abs() < 1e-12);
        }
    }

    #[test]
    fn angle_is_scale_invariant() {
        let a = MixtureVector::from_components(vec![1.0, 2.0]);
        let b = a.scaled(7.0);
        assert!(a.angle(&b) < 1e-7);
    }

    #[test]
    fn angle_of_orthogonal_vectors() {
        let a = MixtureVector::basis(2, 0);
        let b = MixtureVector::basis(2, 1);
        assert!((a.angle(&b) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_angle_convention() {
        let z = MixtureVector::zeros(2);
        let e = MixtureVector::basis(2, 0);
        assert_eq!(z.angle(&e), std::f64::consts::FRAC_PI_2);
        assert!(z.normalized().is_none());
    }

    #[test]
    fn normalized_has_unit_l1() {
        let v = MixtureVector::from_components(vec![2.0, 6.0]);
        let n = v.normalized().unwrap();
        assert!((n.norm_l1() - 1.0).abs() < 1e-12);
        assert!((n.component(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merging_reference_angle_between_parents() {
        // Lemma 2's intuition: a merged vector's reference angle lies
        // between those of its parents.
        let a = MixtureVector::from_components(vec![1.0, 0.2]);
        let b = MixtureVector::from_components(vec![0.3, 1.0]);
        let m = a.plus(&b);
        let phi = |v: &MixtureVector| v.reference_angle(0);
        assert!(phi(&m) >= phi(&a) - 1e-12);
        assert!(phi(&m) <= phi(&b) + 1e-12);
    }

    #[test]
    fn display_elides_zeros() {
        let v = MixtureVector::from_components(vec![0.0, 1.5, 0.0]);
        assert_eq!(format!("{v}"), "{1: 1.500000}");
    }
}
