//! Instrumentation for the convergence proof's quantities (§6).
//!
//! The proof tracks, for every input value `i`, the maximal *reference
//! angle* `ϕᵢ,max(t)` — the largest angle between any pool vector and the
//! `i`-th axis — and shows it is monotonically decreasing (Lemma 2); that
//! the pool eventually splits into classes of vectors that only merge with
//! one another and converge to common directions (Lemma 3); and that the
//! relative weight of each class at every node converges to the class's
//! global weight share (Lemma 6 via Boyd et al.).
//!
//! These helpers compute those quantities on a *live audited run*, so
//! tests can check the lemmas on actual executions rather than trusting
//! the proof transcription.

use crate::classification::Classification;
use crate::mixture::MixtureVector;

/// `ϕᵢ,max` for every axis `i` over a pool of mixture vectors.
///
/// Returns `None` when the pool is empty. Zero vectors are skipped (they
/// describe no collection and never occur in valid pools).
pub fn max_reference_angles<'a, I>(pool: I) -> Option<Vec<f64>>
where
    I: IntoIterator<Item = &'a MixtureVector>,
{
    let mut max: Option<Vec<f64>> = None;
    for v in pool {
        let n = v.len();
        let angles = max.get_or_insert_with(|| vec![0.0; n]);
        assert_eq!(angles.len(), n, "pool vectors must share dimension");
        for (i, slot) in angles.iter_mut().enumerate() {
            let phi = v.reference_angle(i);
            if phi > *slot {
                *slot = phi;
            }
        }
    }
    max
}

/// Collects the auxiliary vectors of a set of classifications into a pool
/// (the proof's `pool(t)`, restricted to node state — in the round model
/// no messages are in flight at round boundaries for push gossip).
///
/// Returns `None` if any collection lacks an auxiliary vector.
pub fn aux_pool<'a, S: 'a>(
    classifications: impl IntoIterator<Item = &'a Classification<S>>,
) -> Option<Vec<&'a MixtureVector>> {
    let mut pool = Vec::new();
    for c in classifications {
        for col in c.iter() {
            pool.push(col.aux.as_ref()?);
        }
    }
    Some(pool)
}

/// Groups pool vectors into *direction classes*: vectors whose pairwise
/// angle is below `eps` share a class (transitively). After convergence
/// these are the destination classes of Lemma 3 — collections in the same
/// class describe the same mix of input values.
pub fn direction_classes(pool: &[&MixtureVector], eps: f64) -> Vec<Vec<usize>> {
    let mut class_of: Vec<Option<usize>> = vec![None; pool.len()];
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for i in 0..pool.len() {
        if class_of[i].is_some() {
            continue;
        }
        let id = classes.len();
        classes.push(vec![i]);
        class_of[i] = Some(id);
        // Flood transitively.
        let mut frontier = vec![i];
        while let Some(a) = frontier.pop() {
            for b in 0..pool.len() {
                if class_of[b].is_none() && pool[a].angle(pool[b]) < eps {
                    class_of[b] = Some(id);
                    classes[id].push(b);
                    frontier.push(b);
                }
            }
        }
    }
    classes
}

/// The relative weight each direction class holds inside one node's
/// classification; `classes` indexes into `pool_order`, the flattened
/// (node, collection) order used to build the pool.
///
/// Helper for Lemma 6-style checks — see the `theory_lemmas` integration
/// tests for usage.
pub fn class_weight_fractions<S>(
    classification: &Classification<S>,
    membership: &[usize],
    class_count: usize,
    offset: usize,
) -> Vec<f64> {
    let total = classification.total_weight();
    let mut fractions = vec![0.0; class_count];
    for (j, col) in classification.iter().enumerate() {
        let class = membership[offset + j];
        fractions[class] += col.weight.fraction_of(total);
    }
    fractions
}

/// Inverts `direction_classes` output into a per-vector membership table.
pub fn membership_table(classes: &[Vec<usize>], pool_len: usize) -> Vec<usize> {
    let mut table = vec![usize::MAX; pool_len];
    for (id, class) in classes.iter().enumerate() {
        for &i in class {
            table[i] = id;
        }
    }
    assert!(
        table.iter().all(|&t| t != usize::MAX),
        "classes must cover the pool"
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;
    use crate::weight::Weight;

    fn mv(components: Vec<f64>) -> MixtureVector {
        MixtureVector::from_components(components)
    }

    #[test]
    fn max_reference_angles_over_basis_pool() {
        let a = MixtureVector::basis(2, 0);
        let b = MixtureVector::basis(2, 1);
        let angles = max_reference_angles([&a, &b]).unwrap();
        // Axis 0: the worst vector is e1 at 90°; same for axis 1.
        assert!((angles[0] - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((angles[1] - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn max_reference_angles_empty_pool() {
        assert!(max_reference_angles(std::iter::empty::<&MixtureVector>()).is_none());
    }

    #[test]
    fn merging_cannot_increase_max_reference_angle() {
        // The heart of Lemma 2, checked on a concrete pool: replacing two
        // vectors with their sum never increases any ϕᵢ,max.
        let a = mv(vec![1.0, 0.3, 0.0]);
        let b = mv(vec![0.2, 1.0, 0.5]);
        let c = mv(vec![0.0, 0.1, 1.0]);
        let before = max_reference_angles([&a, &b, &c]).unwrap();
        let merged = a.plus(&b);
        let after = max_reference_angles([&merged, &c]).unwrap();
        for (x, y) in after.iter().zip(before.iter()) {
            assert!(*x <= y + 1e-12, "angle increased: {x} > {y}");
        }
    }

    #[test]
    fn splitting_preserves_reference_angles() {
        let a = mv(vec![0.7, 0.3]);
        let before = max_reference_angles([&a]).unwrap();
        let half1 = a.scaled(0.5);
        let half2 = a.scaled(0.5);
        let after = max_reference_angles([&half1, &half2]).unwrap();
        for (x, y) in after.iter().zip(before.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn direction_classes_group_parallel_vectors() {
        let a = mv(vec![1.0, 0.0]);
        let b = a.scaled(3.0);
        let c = mv(vec![0.0, 1.0]);
        let pool = [&a, &b, &c];
        let classes = direction_classes(&pool, 1e-6);
        assert_eq!(classes.len(), 2);
        let membership = membership_table(&classes, 3);
        assert_eq!(membership[0], membership[1]);
        assert_ne!(membership[0], membership[2]);
    }

    #[test]
    fn direction_classes_transitive_chaining() {
        // a~b and b~c but a and c are 0.15 rad apart: one class, by
        // transitivity (as in the proof's merge-closure).
        let a = mv(vec![1.0, 0.0]);
        let b = mv(vec![1.0, 0.08]);
        let c = mv(vec![1.0, 0.16]);
        let pool = [&a, &b, &c];
        let classes = direction_classes(&pool, 0.1);
        assert_eq!(classes.len(), 1);
    }

    #[test]
    fn aux_pool_requires_auditing() {
        let mut with_aux = Classification::new();
        with_aux.push(Collection::with_aux(
            1u32,
            Weight::from_grains(1),
            MixtureVector::basis(1, 0),
        ));
        assert!(aux_pool([&with_aux]).is_some());

        let mut without = Classification::new();
        without.push(Collection::new(1u32, Weight::from_grains(1)));
        assert!(aux_pool([&without]).is_none());
    }

    #[test]
    fn class_weight_fractions_sum_to_one() {
        let mut c = Classification::new();
        c.push(Collection::with_aux(
            0u32,
            Weight::from_grains(3),
            MixtureVector::basis(2, 0),
        ));
        c.push(Collection::with_aux(
            1u32,
            Weight::from_grains(1),
            MixtureVector::basis(2, 1),
        ));
        let fractions = class_weight_fractions(&c, &[0, 1], 2, 0);
        assert!((fractions[0] - 0.75).abs() < 1e-12);
        assert!((fractions[1] - 0.25).abs() < 1e-12);
    }
}
