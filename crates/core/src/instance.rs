use std::fmt;

use crate::classification::Classification;
use crate::mixture::MixtureVector;

/// The application-specific functions that instantiate the generic
/// algorithm (Algorithm 1): a summary domain `S`, `valToSummary`,
/// `mergeSet`, `partition` and the summary distance `d_S`.
///
/// Implementations must satisfy the paper's requirements:
///
/// * **R1** — collections of similar values have similar summaries
///   (`d_S(f(v₁), f(v₂)) ≤ ρ · d_M(v₁, v₂)`);
/// * **R2** — [`Instance::val_to_summary`] agrees with `f` on singleton
///   collections;
/// * **R3** — summaries are invariant under weight scaling;
/// * **R4** — merging summaries equals summarizing the merged collection.
///
/// R2–R4 are checked for all bundled instances by the property tests in
/// [`crate::audit`] (via the [`MixtureSummary`] reference mapping).
///
/// `partition` must additionally respect the two structural restrictions of
/// §4.1: at most `k` groups, and no group may consist of a single
/// collection of quantum weight. [`crate::ClassifierNode`] asserts both.
pub trait Instance {
    /// The input value domain `D`.
    type Value: Clone;
    /// The summary domain `S`.
    type Summary: Clone + fmt::Debug;

    /// The bound `k` on the number of collections per classification.
    fn k(&self) -> usize;

    /// Summarizes a whole input value (weight 1) — the paper's
    /// `valToSummary`.
    fn val_to_summary(&self, val: &Self::Value) -> Self::Summary;

    /// Merges weighted summaries into the summary of the union collection —
    /// the paper's `mergeSet`. Weights are supplied as arbitrary positive
    /// numbers; by R3 only their ratios may matter.
    ///
    /// # Panics
    ///
    /// Implementations may panic on an empty slice; the node never passes
    /// one.
    fn merge_set(&self, parts: &[(&Self::Summary, f64)]) -> Self::Summary;

    /// Partitions the collections of `big` into at most `k` groups to be
    /// merged — the paper's `partition`. Returns groups of indices into
    /// `big.collections()`; every index must appear in exactly one group.
    fn partition(&self, big: &Classification<Self::Summary>) -> Vec<Vec<usize>>;

    /// The distance `d_S` between summaries.
    fn summary_distance(&self, a: &Self::Summary, b: &Self::Summary) -> f64;

    /// Reconstructs an input value from raw sensor components — the
    /// dynamic-workload layer's bridge from a drift schedule's numeric
    /// readings to `Self::Value`. `None` (the default) means the value
    /// domain has no canonical component form; drift events targeting
    /// such an instance are skipped.
    fn value_from_components(&self, components: &[f64]) -> Option<Self::Value> {
        let _ = components;
        None
    }
}

/// The reference summary mapping `f` from mixture-space vectors to
/// summaries (§4.2), used to audit Lemma 1 and requirements R2–R4.
///
/// `f` is defined on the *actual input values*, which only the test/audit
/// harness knows; the distributed algorithm itself never evaluates it.
pub trait MixtureSummary: Instance {
    /// Evaluates `f(mixture)` given the global input values: the summary of
    /// the collection containing `mixture[j]` weight of each value `j`.
    ///
    /// # Panics
    ///
    /// May panic if `values.len() != mixture.len()` or the mixture is all
    /// zeros.
    fn summarize_mixture(&self, values: &[Self::Value], mixture: &MixtureVector) -> Self::Summary;
}

/// Generic greedy partition (Algorithm 2's `partition`, phrased over any
/// instance): start from singleton groups, ensure no quantum-weight
/// collection sits alone, then repeatedly merge the two closest groups
/// (by `d_S` of their merged summaries) until at most `k` remain.
///
/// Shared by the centroid instance and used as the Gaussian instance's
/// fallback when EM cannot run.
pub fn greedy_partition<I: Instance>(
    instance: &I,
    big: &Classification<I::Summary>,
) -> Vec<Vec<usize>> {
    let n = big.len();
    let mut groups: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let group_summary = |g: &[usize]| -> I::Summary {
        let parts: Vec<(&I::Summary, f64)> = g
            .iter()
            .map(|&i| {
                let c = big.collection(i);
                (&c.summary, c.weight.grains() as f64)
            })
            .collect();
        instance.merge_set(&parts)
    };

    // Restriction (2): merge quantum-weight singletons with their nearest
    // other group first.
    merge_quantum_singletons(instance, big, &mut groups);

    // Greedy closest-pair merging down to k groups.
    while groups.len() > instance.k() {
        let summaries: Vec<I::Summary> = groups.iter().map(|g| group_summary(g)).collect();
        let (mut bx, mut by, mut best) = (0, 1, f64::INFINITY);
        for x in 0..groups.len() {
            for y in (x + 1)..groups.len() {
                let d = instance.summary_distance(&summaries[x], &summaries[y]);
                if d < best {
                    best = d;
                    bx = x;
                    by = y;
                }
            }
        }
        let merged = groups.swap_remove(by);
        groups[bx].extend(merged);
    }
    groups
}

/// Enforces restriction (2) of §4.1 on a set of groups: every group that is
/// a single collection of quantum weight is merged into the nearest other
/// group (by `d_S` between that collection's summary and the other group's
/// first member).
///
/// No-op when only one group exists.
pub fn merge_quantum_singletons<I: Instance>(
    instance: &I,
    big: &Classification<I::Summary>,
    groups: &mut Vec<Vec<usize>>,
) {
    loop {
        if groups.len() <= 1 {
            return;
        }
        let offender = groups
            .iter()
            .position(|g| g.len() == 1 && big.collection(g[0]).weight.is_quantum());
        let Some(ox) = offender else { return };
        let osum = &big.collection(groups[ox][0]).summary;
        let (mut target, mut best) = (usize::MAX, f64::INFINITY);
        for (y, g) in groups.iter().enumerate() {
            if y == ox {
                continue;
            }
            let d = instance.summary_distance(osum, &big.collection(g[0]).summary);
            if d < best {
                best = d;
                target = y;
            }
        }
        let singleton = groups.swap_remove(ox);
        // swap_remove may have moved the target; recompute by identity.
        let target = if target == groups.len() { ox } else { target };
        groups[target].extend(singleton);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;
    use crate::weight::Weight;

    /// A toy 1-D centroid instance for exercising the helpers.
    struct Toy {
        k: usize,
    }

    impl Instance for Toy {
        type Value = f64;
        type Summary = f64;

        fn k(&self) -> usize {
            self.k
        }

        fn val_to_summary(&self, val: &f64) -> f64 {
            *val
        }

        fn merge_set(&self, parts: &[(&f64, f64)]) -> f64 {
            let w: f64 = parts.iter().map(|(_, w)| w).sum();
            parts.iter().map(|(s, pw)| *s * pw).sum::<f64>() / w
        }

        fn partition(&self, big: &Classification<f64>) -> Vec<Vec<usize>> {
            greedy_partition(self, big)
        }

        fn summary_distance(&self, a: &f64, b: &f64) -> f64 {
            (a - b).abs()
        }
    }

    fn big(vals_weights: &[(f64, u64)]) -> Classification<f64> {
        vals_weights
            .iter()
            .map(|&(v, g)| Collection::new(v, Weight::from_grains(g)))
            .collect()
    }

    #[test]
    fn greedy_merges_closest() {
        let inst = Toy { k: 2 };
        let c = big(&[(0.0, 10), (0.1, 10), (5.0, 10)]);
        let mut groups = inst.partition(&c);
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort();
        assert_eq!(groups, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn greedy_respects_k() {
        let inst = Toy { k: 3 };
        let c = big(&[(0.0, 5), (1.0, 5), (2.0, 5), (3.0, 5), (4.0, 5), (5.0, 5)]);
        let groups = inst.partition(&c);
        assert_eq!(groups.len(), 3);
        let mut all: Vec<usize> = groups.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn quantum_singletons_never_left_alone() {
        let inst = Toy { k: 4 };
        // Collection 2 has quantum weight and is closest to collection 1.
        let c = big(&[(0.0, 10), (4.0, 10), (4.5, 1)]);
        let groups = inst.partition(&c);
        let holder = groups.iter().find(|g| g.contains(&2)).unwrap();
        assert!(
            holder.len() >= 2,
            "quantum singleton left alone: {groups:?}"
        );
        assert!(holder.contains(&1));
    }

    #[test]
    fn single_quantum_collection_alone_is_allowed() {
        // With only one collection total there is nothing to merge with.
        let inst = Toy { k: 2 };
        let c = big(&[(1.0, 1)]);
        let groups = inst.partition(&c);
        assert_eq!(groups, vec![vec![0]]);
    }

    #[test]
    fn weighted_merge_set_is_weighted_mean() {
        let inst = Toy { k: 1 };
        let m = inst.merge_set(&[(&0.0, 3.0), (&4.0, 1.0)]);
        assert!((m - 1.0).abs() < 1e-12);
    }
}
