#![warn(missing_docs)]
//! Gossip-based distributed data classification.
//!
//! A production-quality implementation of *“Distributed Data Classification
//! in Sensor Networks”* (Eyal, Keidar, Rom — PODC 2010): `n` nodes each
//! hold one input value and all of them converge, by pairwise gossip of
//! *weighted collection summaries*, to a common classification of the
//! complete data set — without ever gathering the data anywhere.
//!
//! # Architecture
//!
//! * [`ClassifierNode`] is the generic algorithm (Algorithm 1): it keeps a
//!   [`Classification`] of at most `k` [`Collection`]s, periodically splits
//!   it in half ([`ClassifierNode::split_for_send`]) and merges incoming
//!   classifications ([`ClassifierNode::receive`]).
//! * The application-specific pieces — summary domain, `valToSummary`,
//!   `mergeSet`, `partition`, `d_S` — are an [`Instance`]:
//!   * [`CentroidInstance`] summarizes collections by their centroid
//!     (Algorithm 2, a distributed k-means flavor);
//!   * [`GmInstance`] summarizes collections as Gaussians and reduces
//!     over-full mixtures with Expectation Maximization ([`em`]).
//! * Weights are quantized exactly ([`Weight`], [`Quantum`]): the system
//!   conserves total weight to the grain at all times.
//! * The auxiliary machinery of §4.2 ([`MixtureVector`], [`audit`]) lets
//!   tests verify Lemma 1 and requirements R2–R4 on live runs.
//! * [`convergence`] quantifies agreement between nodes; [`outlier`]
//!   implements the robust-average application of §5.3.2; [`theory`]
//!   instruments the convergence proof's quantities (reference angles,
//!   direction classes) on live runs.
//!
//! Transport is *not* this crate's concern: `distclass-gossip` binds nodes
//! to simulated networks, and any other message layer can do the same.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use distclass_core::{convergence, CentroidInstance, ClassifierNode, Quantum};
//! use distclass_linalg::Vector;
//!
//! // Three nodes with 1-D readings gossip around a directed cycle.
//! let inst = Arc::new(CentroidInstance::new(2)?);
//! let q = Quantum::new(1 << 16);
//! let mut nodes: Vec<ClassifierNode<CentroidInstance>> = [1.0_f64, 2.0, 9.0]
//!     .iter()
//!     .map(|&x| ClassifierNode::new(Arc::clone(&inst), &Vector::from(vec![x]), q))
//!     .collect();
//!
//! for _ in 0..64 {
//!     for i in 0..3 {
//!         let msg = nodes[i].split_for_send();
//!         nodes[(i + 1) % 3].receive(msg);
//!     }
//! }
//! let cls: Vec<_> = nodes.iter().map(|n| n.classification().clone()).collect();
//! assert!(convergence::dispersion(inst.as_ref(), cls.iter()) < 0.5);
//! # Ok::<(), distclass_core::CoreError>(())
//! ```

pub mod audit;
mod centroid;
mod classification;
mod collection;
pub mod convergence;
pub mod em;
mod error;
mod gaussian;
mod instance;
mod mixture;
mod node;
pub mod outlier;
pub mod theory;
mod weight;

pub use centroid::CentroidInstance;
pub use classification::Classification;
pub use collection::Collection;
pub use em::{EmConfig, EmOutcome};
pub use error::CoreError;
pub use gaussian::{GaussianSummary, GmInstance, PartitionStrategy};
pub use instance::{greedy_partition, merge_quantum_singletons, Instance, MixtureSummary};
pub use mixture::MixtureVector;
pub use node::ClassifierNode;
pub use weight::{Quantum, Weight};
