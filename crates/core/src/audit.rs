//! Lemma 1 / requirements auditing (§4.2.2).
//!
//! When nodes are created with [`crate::ClassifierNode::new_audited`],
//! every collection carries its mixture-space vector. These helpers verify
//! that the algorithm maintained the auxiliary invariant:
//!
//! * `f(c.aux) = c.summary` — the stored summary is the summary of the
//!   collection the auxiliary vector describes (Equation 1);
//! * `‖c.aux‖₁ = c.weight` — the auxiliary's mass equals the collection
//!   weight (Equation 2).
//!
//! The checks return a descriptive error string rather than panicking so
//! property tests can report which collection diverged and by how much.

use crate::classification::Classification;
use crate::instance::MixtureSummary;
use crate::weight::Quantum;

/// Verifies Lemma 1 for every collection of `classification`.
///
/// `values` are the global input values (indexed as the mixture vectors
/// are); `tol` bounds both the summary distance and the weight mismatch.
///
/// # Errors
///
/// Returns a human-readable description of the first violated invariant,
/// including collections that lack an auxiliary vector.
pub fn check_lemma1<I: MixtureSummary>(
    instance: &I,
    values: &[I::Value],
    classification: &Classification<I::Summary>,
    quantum: Quantum,
    tol: f64,
) -> Result<(), String> {
    for (idx, c) in classification.iter().enumerate() {
        let aux = c
            .aux
            .as_ref()
            .ok_or_else(|| format!("collection {idx} has no auxiliary vector"))?;

        // Equation 2: ‖aux‖₁ = weight.
        let aux_mass = aux.norm_l1();
        let weight = quantum.to_f64(c.weight);
        if (aux_mass - weight).abs() > tol {
            return Err(format!(
                "collection {idx}: ‖aux‖₁ = {aux_mass} but weight = {weight}"
            ));
        }

        // Equation 1: f(aux) = summary.
        let reference = instance.summarize_mixture(values, aux);
        let d = instance.summary_distance(&reference, &c.summary);
        if d > tol {
            return Err(format!(
                "collection {idx}: d_S(f(aux), summary) = {d} exceeds tolerance {tol}"
            ));
        }
    }
    Ok(())
}

/// Verifies R3 (scale invariance of `f`) for an instance on a given
/// mixture: `f(v) = f(αv)`.
///
/// # Errors
///
/// Returns a description of the violation.
pub fn check_r3<I: MixtureSummary>(
    instance: &I,
    values: &[I::Value],
    mixture: &crate::mixture::MixtureVector,
    alpha: f64,
    tol: f64,
) -> Result<(), String> {
    let f_v = instance.summarize_mixture(values, mixture);
    let f_av = instance.summarize_mixture(values, &mixture.scaled(alpha));
    let d = instance.summary_distance(&f_v, &f_av);
    if d > tol {
        return Err(format!("R3 violated: d_S(f(v), f({alpha}·v)) = {d}"));
    }
    Ok(())
}

/// Verifies R4 (merge consistency) for an instance: merging the summaries
/// of mixtures equals summarizing the summed mixture.
///
/// # Errors
///
/// Returns a description of the violation.
pub fn check_r4<I: MixtureSummary>(
    instance: &I,
    values: &[I::Value],
    mixtures: &[crate::mixture::MixtureVector],
    tol: f64,
) -> Result<(), String> {
    if mixtures.is_empty() {
        return Err("R4 check needs at least one mixture".to_string());
    }
    let summaries: Vec<(I::Summary, f64)> = mixtures
        .iter()
        .map(|m| (instance.summarize_mixture(values, m), m.norm_l1()))
        .collect();
    let parts: Vec<(&I::Summary, f64)> = summaries.iter().map(|(s, w)| (s, *w)).collect();
    let merged = instance.merge_set(&parts);

    let mut sum = mixtures[0].clone();
    for m in &mixtures[1..] {
        sum.add_assign(m);
    }
    let reference = instance.summarize_mixture(values, &sum);
    let d = instance.summary_distance(&merged, &reference);
    if d > tol {
        return Err(format!(
            "R4 violated: d_S(mergeSet(...), f(Σv)) = {d} exceeds {tol}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centroid::CentroidInstance;
    use crate::collection::Collection;
    use crate::mixture::MixtureVector;
    use crate::weight::Weight;
    use distclass_linalg::Vector;

    fn values() -> Vec<Vector> {
        vec![
            Vector::from([0.0]),
            Vector::from([2.0]),
            Vector::from([10.0]),
        ]
    }

    #[test]
    fn lemma1_accepts_consistent_state() {
        let inst = CentroidInstance::new(3).unwrap();
        let q = Quantum::new(4);
        // Collection holding half of value 0 and all of value 1:
        // weight 1.5 = 6 grains, centroid = (0.5·0 + 1·2)/1.5 = 4/3.
        let aux = MixtureVector::from_components(vec![0.5, 1.0, 0.0]);
        let mut c = Classification::new();
        c.push(Collection::with_aux(
            Vector::from([4.0 / 3.0]),
            Weight::from_grains(6),
            aux,
        ));
        check_lemma1(&inst, &values(), &c, q, 1e-9).unwrap();
    }

    #[test]
    fn lemma1_rejects_wrong_summary() {
        let inst = CentroidInstance::new(3).unwrap();
        let q = Quantum::new(4);
        let aux = MixtureVector::basis(3, 0);
        let mut c = Classification::new();
        c.push(Collection::with_aux(
            Vector::from([5.0]), // should be 0.0
            Weight::from_grains(4),
            aux,
        ));
        let err = check_lemma1(&inst, &values(), &c, q, 1e-9).unwrap_err();
        assert!(err.contains("d_S"));
    }

    #[test]
    fn lemma1_rejects_wrong_weight() {
        let inst = CentroidInstance::new(3).unwrap();
        let q = Quantum::new(4);
        let aux = MixtureVector::basis(3, 0);
        let mut c = Classification::new();
        c.push(Collection::with_aux(
            Vector::from([0.0]),
            Weight::from_grains(8), // aux mass is 1.0 = 4 grains
            aux,
        ));
        let err = check_lemma1(&inst, &values(), &c, q, 1e-9).unwrap_err();
        assert!(err.contains("‖aux‖₁"));
    }

    #[test]
    fn lemma1_requires_aux() {
        let inst = CentroidInstance::new(3).unwrap();
        let q = Quantum::new(4);
        let mut c = Classification::new();
        c.push(Collection::new(Vector::from([0.0]), Weight::from_grains(4)));
        assert!(check_lemma1(&inst, &values(), &c, q, 1e-9).is_err());
    }

    #[test]
    fn r3_and_r4_hold_for_centroids() {
        let inst = CentroidInstance::new(3).unwrap();
        let v = MixtureVector::from_components(vec![0.25, 0.5, 0.125]);
        check_r3(&inst, &values(), &v, 17.0, 1e-9).unwrap();
        let mixtures = vec![
            MixtureVector::from_components(vec![0.5, 0.0, 0.25]),
            MixtureVector::from_components(vec![0.0, 1.0, 0.25]),
        ];
        check_r4(&inst, &values(), &mixtures, 1e-9).unwrap();
    }

    #[test]
    fn r4_rejects_empty() {
        let inst = CentroidInstance::new(3).unwrap();
        assert!(check_r4(&inst, &values(), &[], 1e-9).is_err());
    }
}
