//! Centralized Lloyd k-means — the classical algorithm whose distributed
//! analogue is the centroid instance. Used as a quality reference: on the
//! same inputs, the distributed centroid algorithm should find centroids
//! close to Lloyd's.

use distclass_core::CoreError;
use distclass_linalg::Vector;

/// The result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Final centroids (at most `k`; fewer if clusters starved).
    pub centroids: Vec<Vector>,
    /// `assignments[i]` is the centroid index of point `i`.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroids.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// Runs Lloyd k-means with deterministic farthest-point seeding.
///
/// # Errors
///
/// Returns [`CoreError::InvalidK`] when `k == 0` and
/// [`CoreError::InvalidParameter`] when `points` is empty or `max_iters`
/// is 0.
///
/// # Example
///
/// ```
/// use distclass_baselines::kmeans;
/// use distclass_linalg::Vector;
///
/// let pts = vec![
///     Vector::from(vec![0.0]), Vector::from(vec![0.2]),
///     Vector::from(vec![9.8]), Vector::from(vec![10.0]),
/// ];
/// let r = kmeans::lloyd(&pts, 2, 100)?;
/// assert_eq!(r.centroids.len(), 2);
/// assert_eq!(r.assignments[0], r.assignments[1]);
/// assert_ne!(r.assignments[0], r.assignments[2]);
/// # Ok::<(), distclass_core::CoreError>(())
/// ```
pub fn lloyd(points: &[Vector], k: usize, max_iters: usize) -> Result<KMeansResult, CoreError> {
    if k == 0 {
        return Err(CoreError::InvalidK { k });
    }
    if points.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "points",
            constraint: "at least one point",
        });
    }
    if max_iters == 0 {
        return Err(CoreError::InvalidParameter {
            name: "max_iters",
            constraint: "max_iters >= 1",
        });
    }
    let k = k.min(points.len());

    // Farthest-point seeding (deterministic k-means++ analogue).
    let mut centroids: Vec<Vector> = vec![points[0].clone()];
    while centroids.len() < k {
        let far = points
            .iter()
            .max_by(|a, b| {
                let da = nearest_sq(a, &centroids);
                let db = nearest_sq(b, &centroids);
                da.total_cmp(&db)
            })
            .expect("non-empty points");
        centroids.push(far.clone());
    }

    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = nearest_index(p, &centroids);
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        let d = points[0].dim();
        let mut sums = vec![Vector::zeros(d); centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (p, &a) in points.iter().zip(assignments.iter()) {
            sums[a] += p;
            counts[a] += 1;
        }
        for (j, (s, &c)) in sums.iter().zip(counts.iter()).enumerate() {
            if c > 0 {
                centroids[j] = s.scaled(1.0 / c as f64);
            }
        }
        if !changed && iterations > 1 {
            break;
        }
    }

    // Drop starved centroids and compact assignments.
    let mut used: Vec<usize> = assignments.clone();
    used.sort_unstable();
    used.dedup();
    let remap = |a: usize| used.iter().position(|&u| u == a).expect("assigned index");
    let centroids: Vec<Vector> = used.iter().map(|&j| centroids[j].clone()).collect();
    let assignments: Vec<usize> = assignments.into_iter().map(remap).collect();

    let inertia = points
        .iter()
        .zip(assignments.iter())
        .map(|(p, &a)| {
            let d = p.distance(&centroids[a]);
            d * d
        })
        .sum();

    Ok(KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

fn nearest_sq(p: &Vector, centroids: &[Vector]) -> f64 {
    centroids
        .iter()
        .map(|c| {
            let d = p.distance(c);
            d * d
        })
        .fold(f64::INFINITY, f64::min)
}

fn nearest_index(p: &Vector, centroids: &[Vector]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (j, c) in centroids.iter().enumerate() {
        let d = p.distance(c);
        if d < best_d {
            best_d = d;
            best = j;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vector> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(Vector::from([i as f64 * 0.01, 0.0]));
            pts.push(Vector::from([5.0 + i as f64 * 0.01, 0.0]));
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let r = lloyd(&pts, 2, 50).unwrap();
        assert_eq!(r.centroids.len(), 2);
        let mut means: Vec<f64> = r.centroids.iter().map(|c| c[0]).collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((means[0] - 0.045).abs() < 0.01);
        assert!((means[1] - 5.045).abs() < 0.01);
        assert!(r.inertia < 0.1);
    }

    #[test]
    fn k_larger_than_points_is_clamped() {
        let pts = vec![Vector::from([0.0]), Vector::from([1.0])];
        let r = lloyd(&pts, 10, 10).unwrap();
        assert_eq!(r.centroids.len(), 2);
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn k_one_gives_global_mean() {
        let pts = vec![
            Vector::from([0.0]),
            Vector::from([2.0]),
            Vector::from([4.0]),
        ];
        let r = lloyd(&pts, 1, 10).unwrap();
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            lloyd(&[], 2, 10),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            lloyd(&[Vector::from([0.0])], 0, 10),
            Err(CoreError::InvalidK { .. })
        ));
        assert!(matches!(
            lloyd(&[Vector::from([0.0])], 1, 0),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn deterministic() {
        let pts = two_blobs();
        let a = lloyd(&pts, 2, 50).unwrap();
        let b = lloyd(&pts, 2, 50).unwrap();
        assert_eq!(a, b);
    }
}
