use std::fmt;

use distclass_core::{
    greedy_partition, Classification, CoreError, Instance, MixtureSummary, MixtureVector,
};

/// A fixed-range, fixed-bin-count histogram over 1-D values, normalized to
/// unit mass. The summary domain of [`HistogramInstance`].
///
/// Bins partition `[lo, hi)`; values outside the range are clamped into
/// the first/last bin (estimating the *shape* of the distribution, as the
/// gossip histogram papers do).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    masses: Vec<f64>,
}

impl HistogramSummary {
    /// The normalized per-bin masses (they sum to 1).
    pub fn masses(&self) -> &[f64] {
        &self.masses
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.masses.len()
    }

    /// L1 distance between two histograms (total variation × 2).
    ///
    /// # Panics
    ///
    /// Panics on bin-count mismatch.
    pub fn l1_distance(&self, other: &HistogramSummary) -> f64 {
        assert_eq!(self.bins(), other.bins(), "bin count mismatch");
        self.masses
            .iter()
            .zip(other.masses.iter())
            .map(|(a, b)| (a - b).abs())
            .sum()
    }
}

impl fmt::Display for HistogramSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hist[")?;
        for (i, m) in self.masses.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{m:.3}")?;
        }
        write!(f, "]")
    }
}

/// A third instantiation of the generic algorithm: collections summarized
/// as normalized histograms over a fixed range — the distribution-
/// estimation approach of Haridasan & van Renesse, realized inside the
/// paper's framework.
///
/// `mergeSet` is the weighted average of bin masses, which makes R2–R4
/// hold *exactly* (the mapping `f` is linear in the mixture vector). With
/// `k = 1` every node converges to the histogram of the full input
/// multiset — pure distribution estimation; with `k > 1` the algorithm
/// classifies nodes into groups with similar histograms.
///
/// # Example
///
/// ```
/// use distclass_baselines::HistogramInstance;
/// use distclass_core::Instance;
///
/// let inst = HistogramInstance::new(1, 0.0, 10.0, 5)?;
/// let h = inst.val_to_summary(&2.5);
/// assert_eq!(h.masses(), &[0.0, 1.0, 0.0, 0.0, 0.0]);
/// # Ok::<(), distclass_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramInstance {
    k: usize,
    lo: f64,
    hi: f64,
    bins: usize,
}

impl HistogramInstance {
    /// Creates a histogram instance over `[lo, hi)` with `bins` bins and
    /// collection bound `k`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidK`] if `k == 0`, and
    /// [`CoreError::InvalidParameter`] if `bins == 0` or `lo >= hi`.
    pub fn new(k: usize, lo: f64, hi: f64, bins: usize) -> Result<Self, CoreError> {
        if k == 0 {
            return Err(CoreError::InvalidK { k });
        }
        if bins == 0 {
            return Err(CoreError::InvalidParameter {
                name: "bins",
                constraint: "bins >= 1",
            });
        }
        if lo >= hi || lo.is_nan() || hi.is_nan() {
            return Err(CoreError::InvalidParameter {
                name: "lo/hi",
                constraint: "lo < hi",
            });
        }
        Ok(HistogramInstance { k, lo, hi, bins })
    }

    /// The bin index of a value (values outside the range are clamped).
    pub fn bin_of(&self, value: f64) -> usize {
        let t = (value - self.lo) / (self.hi - self.lo);
        let raw = (t * self.bins as f64).floor();
        (raw.max(0.0) as usize).min(self.bins - 1)
    }
}

impl Instance for HistogramInstance {
    type Value = f64;
    type Summary = HistogramSummary;

    fn k(&self) -> usize {
        self.k
    }

    fn val_to_summary(&self, val: &f64) -> HistogramSummary {
        let mut masses = vec![0.0; self.bins];
        masses[self.bin_of(*val)] = 1.0;
        HistogramSummary { masses }
    }

    fn merge_set(&self, parts: &[(&HistogramSummary, f64)]) -> HistogramSummary {
        assert!(!parts.is_empty(), "merge_set of empty set");
        let total: f64 = parts.iter().map(|(_, w)| w).sum();
        let mut masses = vec![0.0; self.bins];
        for (s, w) in parts {
            for (m, x) in masses.iter_mut().zip(s.masses.iter()) {
                *m += x * w / total;
            }
        }
        HistogramSummary { masses }
    }

    fn partition(&self, big: &Classification<HistogramSummary>) -> Vec<Vec<usize>> {
        greedy_partition(self, big)
    }

    fn summary_distance(&self, a: &HistogramSummary, b: &HistogramSummary) -> f64 {
        a.l1_distance(b)
    }
}

impl MixtureSummary for HistogramInstance {
    fn summarize_mixture(&self, values: &[f64], mixture: &MixtureVector) -> HistogramSummary {
        assert_eq!(values.len(), mixture.len(), "mixture length mismatch");
        let total = mixture.norm_l1();
        assert!(total > 0.0, "cannot summarize an empty mixture");
        let mut masses = vec![0.0; self.bins];
        for (val, &w) in values.iter().zip(mixture.components()) {
            if w > 0.0 {
                masses[self.bin_of(*val)] += w / total;
            }
        }
        HistogramSummary { masses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> HistogramInstance {
        HistogramInstance::new(2, 0.0, 10.0, 10).unwrap()
    }

    #[test]
    fn validates_parameters() {
        assert!(matches!(
            HistogramInstance::new(0, 0.0, 1.0, 4),
            Err(CoreError::InvalidK { .. })
        ));
        assert!(HistogramInstance::new(1, 0.0, 1.0, 0).is_err());
        assert!(HistogramInstance::new(1, 1.0, 1.0, 4).is_err());
    }

    #[test]
    fn bin_of_clamps() {
        let h = inst();
        assert_eq!(h.bin_of(-5.0), 0);
        assert_eq!(h.bin_of(0.0), 0);
        assert_eq!(h.bin_of(9.99), 9);
        assert_eq!(h.bin_of(15.0), 9);
        assert_eq!(h.bin_of(5.0), 5);
    }

    #[test]
    fn merge_is_weighted_average() {
        let h = inst();
        let a = h.val_to_summary(&1.0);
        let b = h.val_to_summary(&8.0);
        let m = h.merge_set(&[(&a, 3.0), (&b, 1.0)]);
        assert!((m.masses()[1] - 0.75).abs() < 1e-12);
        assert!((m.masses()[8] - 0.25).abs() < 1e-12);
        let total: f64 = m.masses().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r2_r4_hold_exactly() {
        let h = inst();
        let values = vec![1.0, 3.0, 8.0];
        // R2.
        let e1 = MixtureVector::basis(3, 1);
        assert_eq!(
            h.summarize_mixture(&values, &e1),
            h.val_to_summary(&values[1])
        );
        // R4: merge of summaries equals summary of summed mixture.
        let v1 = MixtureVector::from_components(vec![0.5, 0.5, 0.0]);
        let v2 = MixtureVector::from_components(vec![0.0, 0.25, 0.75]);
        let merged = h.merge_set(&[
            (&h.summarize_mixture(&values, &v1), v1.norm_l1()),
            (&h.summarize_mixture(&values, &v2), v2.norm_l1()),
        ]);
        let reference = h.summarize_mixture(&values, &v1.plus(&v2));
        assert!(merged.l1_distance(&reference) < 1e-12);
    }

    #[test]
    fn distance_separates_different_shapes() {
        let h = inst();
        let a = h.val_to_summary(&1.0);
        let b = h.val_to_summary(&9.0);
        assert_eq!(h.summary_distance(&a, &b), 2.0);
        assert_eq!(h.summary_distance(&a, &a), 0.0);
    }

    #[test]
    fn display_compact() {
        let h = inst().val_to_summary(&0.5);
        assert!(format!("{h}").starts_with("hist["));
    }
}
