//! Centralized EM Gaussian-Mixture fitting — the classical algorithm whose
//! distributed analogue is the GM instance. A thin, documented wrapper
//! around [`distclass_core::em::fit_points`] plus a mixture
//! log-likelihood, used by tests and experiments to compare distributed
//! results against the “all data in one place” ideal.

use distclass_core::em::{fit_points, EmConfig, EmOutcome};
use distclass_core::{CoreError, GaussianSummary};
use distclass_linalg::Vector;

/// Fits a `k`-component Gaussian Mixture to unweighted points.
///
/// # Errors
///
/// Propagates [`CoreError`] from the underlying EM.
///
/// # Example
///
/// ```
/// use distclass_baselines::em_central;
/// use distclass_core::EmConfig;
/// use distclass_linalg::Vector;
///
/// let pts: Vec<Vector> = (0..40)
///     .map(|i| {
///         let base = if i % 2 == 0 { 0.0 } else { 8.0 };
///         Vector::from(vec![base + 0.01 * (i as f64)])
///     })
///     .collect();
/// let fit = em_central::fit(&pts, 2, &EmConfig::default())?;
/// assert_eq!(fit.model.len(), 2);
/// # Ok::<(), distclass_core::CoreError>(())
/// ```
pub fn fit(points: &[Vector], k: usize, cfg: &EmConfig) -> Result<EmOutcome, CoreError> {
    let weights = vec![1.0; points.len()];
    fit_points(points, &weights, k, cfg)
}

/// The average log-likelihood of `points` under a Gaussian-Mixture model
/// given as `(component, mixing weight)` pairs.
///
/// Degenerate component covariances are regularized with `reg`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for an empty model or point set,
/// and propagates density-evaluation failures.
pub fn avg_log_likelihood(
    points: &[Vector],
    model: &[(GaussianSummary, f64)],
    reg: f64,
) -> Result<f64, CoreError> {
    if model.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "model",
            constraint: "at least one component",
        });
    }
    if points.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "points",
            constraint: "at least one point",
        });
    }
    let mut total = 0.0;
    for p in points {
        let mut density = 0.0;
        for (g, pi) in model {
            density += pi * g.pdf(p, reg)?;
        }
        total += density.max(1e-300).ln();
    }
    Ok(total / points.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vector> {
        let mut pts = Vec::new();
        for i in 0..15 {
            let t = (i as f64 - 7.0) / 10.0;
            pts.push(Vector::from([t, t * 0.5]));
            pts.push(Vector::from([10.0 + t, -t]));
        }
        pts
    }

    #[test]
    fn fit_finds_both_blobs() {
        let pts = blobs();
        let out = fit(&pts, 2, &EmConfig::default()).unwrap();
        let mut means: Vec<f64> = out.model.iter().map(|(s, _)| s.mean[0]).collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(means[0].abs() < 0.5, "means {means:?}");
        assert!((means[1] - 10.0).abs() < 0.5, "means {means:?}");
    }

    #[test]
    fn two_component_model_beats_one_component() {
        let pts = blobs();
        let m1 = fit(&pts, 1, &EmConfig::default()).unwrap();
        let m2 = fit(&pts, 2, &EmConfig::default()).unwrap();
        let ll1 = avg_log_likelihood(&pts, &m1.model, 1e-6).unwrap();
        let ll2 = avg_log_likelihood(&pts, &m2.model, 1e-6).unwrap();
        assert!(ll2 > ll1, "ll2 {ll2} should beat ll1 {ll1}");
    }

    #[test]
    fn likelihood_validates_inputs() {
        let pts = blobs();
        assert!(matches!(
            avg_log_likelihood(&pts, &[], 1e-6),
            Err(CoreError::InvalidParameter { .. })
        ));
        let model = fit(&pts, 1, &EmConfig::default()).unwrap().model;
        assert!(matches!(
            avg_log_likelihood(&[], &model, 1e-6),
            Err(CoreError::InvalidParameter { .. })
        ));
    }
}
