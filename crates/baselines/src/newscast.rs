//! Newscast EM (Kowalczyk & Vlassis \[14\]): distributed Gaussian-Mixture
//! estimation by having nodes *simulate centralized EM*, with every M-step
//! aggregate computed by gossip averaging.
//!
//! Each node holds one data point `xᵢ` and responsibilities `rᵢⱼ` for the
//! `k` model components. The global M-step needs the averages (over nodes)
//! of `rᵢⱼ`, `rᵢⱼ·xᵢ` and `rᵢⱼ·xᵢxᵢᵀ`; Newscast estimates them with
//! pairwise uniform gossip averaging — `cycles_per_iter` cycles in which
//! every node exchanges and averages its aggregate estimate with a random
//! neighbor. After each aggregation phase nodes recompute parameters
//! locally and run their local E-step, then the next EM iteration begins.
//!
//! This is the related-work comparison point of the paper (§2): it
//! produces good mixtures, but needs *multiple aggregation phases, each
//! comparable in length to one complete run of the classification
//! algorithm* — the experiment `related_work` quantifies that.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use distclass_core::{CoreError, GaussianSummary};
use distclass_linalg::{Matrix, Vector};
use distclass_net::{derive_seed, NodeId, Topology};

/// Tunables for a Newscast EM run.
#[derive(Debug, Clone, PartialEq)]
pub struct NewscastConfig {
    /// Number of mixture components.
    pub k: usize,
    /// Outer EM iterations.
    pub em_iters: usize,
    /// Gossip averaging cycles per EM iteration (each cycle: every node
    /// exchanges once).
    pub cycles_per_iter: usize,
    /// Covariance regularization.
    pub reg: f64,
    /// Seed for responsibilities initialization and partner choice.
    pub seed: u64,
}

impl Default for NewscastConfig {
    /// `k = 2`, 10 EM iterations, 15 cycles each, `reg = 1e-6`, seed 42.
    fn default() -> Self {
        NewscastConfig {
            k: 2,
            em_iters: 10,
            cycles_per_iter: 15,
            reg: 1e-6,
            seed: 42,
        }
    }
}

/// The outcome of a Newscast EM run.
#[derive(Debug, Clone)]
pub struct NewscastResult {
    /// Each node's final mixture estimate (component, mixing weight).
    pub models: Vec<Vec<(GaussianSummary, f64)>>,
    /// Equivalent communication rounds executed (`em_iters × cycles`).
    pub rounds: u64,
    /// Total point-to-point messages exchanged.
    pub messages: u64,
    /// Floats carried per message (`k · (1 + d + d(d+1)/2)`).
    pub floats_per_message: usize,
}

/// Per-node aggregate estimate: for each component, the running averages of
/// `r`, `r·x` and `r·xxᵀ` (upper triangle).
#[derive(Debug, Clone)]
struct Aggregate {
    data: Vec<f64>,
}

impl Aggregate {
    fn stride(d: usize) -> usize {
        1 + d + d * (d + 1) / 2
    }

    fn from_local(x: &Vector, resp: &[f64]) -> Self {
        let d = x.dim();
        let stride = Self::stride(d);
        let mut data = vec![0.0; resp.len() * stride];
        for (j, &r) in resp.iter().enumerate() {
            let base = j * stride;
            data[base] = r;
            for a in 0..d {
                data[base + 1 + a] = r * x[a];
            }
            let mut idx = base + 1 + d;
            for a in 0..d {
                for b in a..d {
                    data[idx] = r * x[a] * x[b];
                    idx += 1;
                }
            }
        }
        Aggregate { data }
    }

    fn average_with(&mut self, other: &mut Aggregate) {
        for (a, b) in self.data.iter_mut().zip(other.data.iter_mut()) {
            let avg = 0.5 * (*a + *b);
            *a = avg;
            *b = avg;
        }
    }

    /// Extracts the model `(summary, π)` for component `j`.
    fn component(&self, j: usize, d: usize, reg: f64) -> (GaussianSummary, f64) {
        let stride = Self::stride(d);
        let base = j * stride;
        let pi = self.data[base].max(1e-12);
        let mean: Vector = (0..d).map(|a| self.data[base + 1 + a] / pi).collect();
        let mut cov = Matrix::zeros(d, d);
        let mut idx = base + 1 + d;
        for a in 0..d {
            for b in a..d {
                let second = self.data[idx] / pi;
                let c = second - mean[a] * mean[b];
                cov[(a, b)] = c;
                cov[(b, a)] = c;
                idx += 1;
            }
        }
        cov.add_diagonal(reg);
        (GaussianSummary::new(mean, cov), pi)
    }
}

/// Runs Newscast EM over a topology.
///
/// # Errors
///
/// Returns [`CoreError::InvalidK`] for `k == 0` and
/// [`CoreError::InvalidParameter`] for an empty value set or mismatched
/// configuration.
///
/// # Panics
///
/// Panics if `values.len() != topology.len()`.
pub fn run(
    topology: &Topology,
    values: &[Vector],
    cfg: &NewscastConfig,
) -> Result<NewscastResult, CoreError> {
    if cfg.k == 0 {
        return Err(CoreError::InvalidK { k: cfg.k });
    }
    if values.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "values",
            constraint: "at least one value",
        });
    }
    if cfg.em_iters == 0 || cfg.cycles_per_iter == 0 {
        return Err(CoreError::InvalidParameter {
            name: "em_iters/cycles_per_iter",
            constraint: "at least one iteration and one cycle",
        });
    }
    assert_eq!(values.len(), topology.len(), "one value per node required");

    let n = values.len();
    let d = values[0].dim();
    let k = cfg.k.min(n);
    let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, 0xCA57));

    // Initialize responsibilities from k farthest-point anchor values
    // (deterministic k-means++ analogue, like the centralized EM seeding).
    let mut anchors: Vec<&Vector> = vec![&values[0]];
    while anchors.len() < k {
        let far = values
            .iter()
            .max_by(|a, b| {
                let da = anchors
                    .iter()
                    .map(|c| a.distance(c))
                    .fold(f64::INFINITY, f64::min);
                let db = anchors
                    .iter()
                    .map(|c| b.distance(c))
                    .fold(f64::INFINITY, f64::min);
                da.total_cmp(&db)
            })
            .expect("non-empty values");
        anchors.push(far);
    }
    let mut resp: Vec<Vec<f64>> = values
        .iter()
        .map(|x| {
            let scores: Vec<f64> = anchors
                .iter()
                .map(|a| {
                    let dist = x.distance(a);
                    (-dist * dist).exp() + 1e-9
                })
                .collect();
            let total: f64 = scores.iter().sum();
            scores.into_iter().map(|s| s / total).collect()
        })
        .collect();

    let mut messages = 0u64;
    let mut rounds = 0u64;

    for _ in 0..cfg.em_iters {
        // --- Aggregation phase (gossip averaging of M-step sums). ---
        let mut aggregates: Vec<Aggregate> = values
            .iter()
            .zip(resp.iter())
            .map(|(x, r)| Aggregate::from_local(x, r))
            .collect();
        for _ in 0..cfg.cycles_per_iter {
            rounds += 1;
            for i in 0..n {
                let nbrs = topology.neighbors(i);
                let partner: NodeId = nbrs[rng.gen_range(0..nbrs.len())];
                if partner == i {
                    continue;
                }
                // Bilateral exchange: two messages (one each way).
                messages += 2;
                let (lo, hi) = if i < partner {
                    (i, partner)
                } else {
                    (partner, i)
                };
                let (left, right) = aggregates.split_at_mut(hi);
                left[lo].average_with(&mut right[0]);
            }
        }

        // --- Local parameter extraction and E-step. ---
        for (i, x) in values.iter().enumerate() {
            let model: Vec<(GaussianSummary, f64)> = (0..k)
                .map(|j| aggregates[i].component(j, d, cfg.reg))
                .collect();
            let mut scores = Vec::with_capacity(k);
            for (g, pi) in &model {
                let lp = g.log_pdf(x, cfg.reg).unwrap_or(f64::NEG_INFINITY);
                scores.push(pi.max(1e-300).ln() + lp);
            }
            let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
            let total: f64 = exps.iter().sum();
            resp[i] = exps.into_iter().map(|e| e / total).collect();
        }

        // Keep the last aggregation's models for the result.
        if rounds as usize >= cfg.em_iters * cfg.cycles_per_iter {
            let models = (0..n)
                .map(|i| {
                    (0..k)
                        .map(|j| aggregates[i].component(j, d, cfg.reg))
                        .collect()
                })
                .collect();
            return Ok(NewscastResult {
                models,
                rounds,
                messages,
                floats_per_message: k * Aggregate::stride(d),
            });
        }
    }
    unreachable!("loop always returns on the last iteration")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_values(n: usize) -> Vec<Vector> {
        (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0 } else { 10.0 };
                Vector::from([c + 0.02 * (i / 2) as f64, c * 0.5])
            })
            .collect()
    }

    #[test]
    fn recovers_two_blobs() {
        let n = 60;
        let values = blob_values(n);
        let cfg = NewscastConfig {
            k: 2,
            em_iters: 8,
            cycles_per_iter: 20,
            ..NewscastConfig::default()
        };
        let out = run(&Topology::complete(n), &values, &cfg).unwrap();
        assert_eq!(out.rounds, 8 * 20);
        // Node 0's model should place components near (0, 0) and (10, 5).
        let mut means: Vec<f64> = out.models[0].iter().map(|(g, _)| g.mean[0]).collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(means[0].abs() < 1.0, "means {means:?}");
        assert!((means[1] - 10.0).abs() < 1.0, "means {means:?}");
        // Mixing weights near 1/2 each.
        for (_, pi) in &out.models[0] {
            assert!((pi - 0.5).abs() < 0.15, "pi {pi}");
        }
    }

    #[test]
    fn nodes_agree_after_enough_cycles() {
        let n = 40;
        let values = blob_values(n);
        let cfg = NewscastConfig {
            k: 2,
            em_iters: 6,
            cycles_per_iter: 25,
            ..NewscastConfig::default()
        };
        let out = run(&Topology::complete(n), &values, &cfg).unwrap();
        let reference = &out.models[0];
        for model in &out.models[1..] {
            for ((ga, _), (gb, _)) in reference.iter().zip(model.iter()) {
                assert!(
                    ga.mean.distance(&gb.mean) < 0.5,
                    "disagreement {} vs {}",
                    ga.mean,
                    gb.mean
                );
            }
        }
    }

    #[test]
    fn message_cost_scales_with_iterations() {
        let n = 20;
        let values = blob_values(n);
        let cheap = NewscastConfig {
            em_iters: 2,
            cycles_per_iter: 5,
            ..NewscastConfig::default()
        };
        let pricey = NewscastConfig {
            em_iters: 4,
            cycles_per_iter: 10,
            ..NewscastConfig::default()
        };
        let a = run(&Topology::complete(n), &values, &cheap).unwrap();
        let b = run(&Topology::complete(n), &values, &pricey).unwrap();
        assert_eq!(a.messages, 2 * 5 * 2 * n as u64);
        assert_eq!(b.messages, 4 * 10 * 2 * n as u64);
        assert!(b.rounds > a.rounds);
    }

    #[test]
    fn rejects_bad_config() {
        let values = blob_values(4);
        let topo = Topology::complete(4);
        assert!(matches!(
            run(
                &topo,
                &values,
                &NewscastConfig {
                    k: 0,
                    ..NewscastConfig::default()
                }
            ),
            Err(CoreError::InvalidK { .. })
        ));
        assert!(matches!(
            run(
                &topo,
                &values,
                &NewscastConfig {
                    em_iters: 0,
                    ..NewscastConfig::default()
                }
            ),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            run(&Topology::complete(2), &[], &NewscastConfig::default()),
            Err(CoreError::InvalidParameter { .. })
        ));
    }
}
