use std::sync::Arc;

use distclass_linalg::Vector;
use distclass_net::{Context, CrashModel, NetMetrics, NodeId, Protocol, RoundEngine, Topology};

/// Push-sum average aggregation (Kempe et al.): each node keeps a value
/// accumulator `s` and a weight `w`; on every tick it sends half of both to
/// a random neighbor and keeps the other half. `s/w` converges to the
/// global average at every node.
///
/// This is the paper's “regular aggregation” comparator: it has no notion
/// of outliers, so erroneous values pull the estimate proportionally to
/// their magnitude.
#[derive(Debug, Clone)]
pub struct PushSumProtocol {
    sum: Vector,
    weight: f64,
}

impl PushSumProtocol {
    /// Starts a node holding `value` at weight 1.
    pub fn new(value: Vector) -> Self {
        PushSumProtocol {
            sum: value,
            weight: 1.0,
        }
    }

    /// The node's current estimate of the global average.
    pub fn estimate(&self) -> Vector {
        if self.weight == 0.0 {
            return Vector::zeros(self.sum.dim());
        }
        self.sum.scaled(1.0 / self.weight)
    }

    /// The node's current weight share.
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

impl Protocol for PushSumProtocol {
    type Message = (Vector, f64);

    fn on_tick(&mut self, ctx: &mut Context<'_, Self::Message>) {
        let to = ctx.random_neighbor();
        self.sum.scale(0.5);
        self.weight *= 0.5;
        ctx.send(to, (self.sum.clone(), self.weight));
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        (sum, weight): Self::Message,
        _ctx: &mut Context<'_, Self::Message>,
    ) {
        self.sum += &sum;
        self.weight += weight;
    }
}

/// A ready-to-run push-sum simulation over a topology, mirroring
/// [`distclass_gossip::RoundSim`]'s interface for side-by-side comparisons.
///
/// [`distclass_gossip::RoundSim`]: https://docs.rs/distclass-gossip
///
/// # Example
///
/// ```
/// use distclass_baselines::PushSumSim;
/// use distclass_linalg::Vector;
/// use distclass_net::Topology;
///
/// let values: Vec<Vector> = (0..10).map(|i| Vector::from(vec![i as f64])).collect();
/// let mut sim = PushSumSim::new(Topology::complete(10), &values, 7);
/// sim.run_rounds(40);
/// let est = sim.estimates();
/// assert!((est[0][0] - 4.5).abs() < 1e-6);
/// ```
#[derive(Debug)]
pub struct PushSumSim {
    engine: RoundEngine<PushSumProtocol>,
}

impl PushSumSim {
    /// Builds a push-sum simulation: node `i` holds `values[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != topology.len()`.
    pub fn new(topology: Topology, values: &[Vector], seed: u64) -> Self {
        Self::with_crash_model(topology, values, seed, CrashModel::None)
    }

    /// Builds a push-sum simulation with crash faults.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != topology.len()`.
    pub fn with_crash_model(
        topology: Topology,
        values: &[Vector],
        seed: u64,
        crash: CrashModel,
    ) -> Self {
        assert_eq!(
            values.len(),
            topology.len(),
            "one input value per node required"
        );
        let values = Arc::new(values.to_vec());
        let engine = RoundEngine::new(topology, seed, |i| PushSumProtocol::new(values[i].clone()))
            .with_crash_model(crash);
        PushSumSim { engine }
    }

    /// Runs one round.
    pub fn run_round(&mut self) {
        self.engine.run_round();
    }

    /// Runs `rounds` rounds.
    pub fn run_rounds(&mut self, rounds: u64) {
        self.engine.run_rounds(rounds);
    }

    /// Live nodes' estimates of the global average.
    pub fn estimates(&self) -> Vec<Vector> {
        self.engine
            .live_nodes()
            .into_iter()
            .map(|i| self.engine.node(i).estimate())
            .collect()
    }

    /// Mean (over live nodes) Euclidean distance from each node's estimate
    /// to `truth` — the error metric of Figures 3 and 4.
    ///
    /// `None` when every node has crashed: an all-dead network has no
    /// estimate, and callers must decide what that means for them rather
    /// than silently propagating a NaN.
    pub fn mean_error(&self, truth: &Vector) -> Option<f64> {
        self.error_stats(truth).map(|(mean, _max)| mean)
    }

    /// Mean and worst per-node error against `truth`, or `None` when no
    /// node is live — the pair convergence telemetry wants.
    pub fn error_stats(&self, truth: &Vector) -> Option<(f64, f64)> {
        let estimates = self.estimates();
        if estimates.is_empty() {
            return None;
        }
        let mut sum = 0.0;
        let mut max = 0.0f64;
        for e in &estimates {
            let d = e.distance(truth);
            sum += d;
            max = max.max(d);
        }
        Some((sum / estimates.len() as f64, max))
    }

    /// Spread (max − min) of live nodes' push-sum weights — the analogue
    /// of the classifier's weight-spread telemetry. Zero when fewer than
    /// two nodes are live.
    pub fn weight_spread(&self) -> f64 {
        let live = self.engine.live_nodes();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &i in &live {
            let w = self.engine.node(i).weight();
            min = min.min(w);
            max = max.max(w);
        }
        if live.len() < 2 {
            0.0
        } else {
            max - min
        }
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.engine.live_count()
    }

    /// Network metrics.
    pub fn metrics(&self) -> NetMetrics {
        self.engine.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(n: usize) -> Vec<Vector> {
        (0..n).map(|i| Vector::from([i as f64, 0.5])).collect()
    }

    #[test]
    fn converges_to_true_mean_on_complete() {
        let vals = values(20);
        let mut sim = PushSumSim::new(Topology::complete(20), &vals, 3);
        sim.run_rounds(60);
        let truth = Vector::from([9.5, 0.5]);
        let err = sim.mean_error(&truth).expect("live nodes");
        assert!(err < 1e-6, "err {err}");
    }

    #[test]
    fn converges_on_ring_slower_but_surely() {
        let vals = values(10);
        let mut sim = PushSumSim::new(Topology::ring(10), &vals, 3);
        sim.run_rounds(300);
        let truth = Vector::from([4.5, 0.5]);
        let err = sim.mean_error(&truth).expect("live nodes");
        assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn mass_conservation_without_crashes() {
        let vals = values(8);
        let mut sim = PushSumSim::new(Topology::complete(8), &vals, 1);
        sim.run_rounds(25);
        // All weight still in live nodes (none crashed, none in flight at
        // a round boundary).
        let total_w: f64 = sim.engine.nodes().iter().map(PushSumProtocol::weight).sum();
        assert!((total_w - 8.0).abs() < 1e-9);
    }

    #[test]
    fn survives_crashes_with_degraded_but_finite_estimate() {
        let vals = values(30);
        let mut sim = PushSumSim::with_crash_model(
            Topology::complete(30),
            &vals,
            5,
            CrashModel::per_round(0.05),
        );
        sim.run_rounds(40);
        assert!(sim.live_count() < 30);
        let truth = Vector::from([14.5, 0.5]);
        let err = sim.mean_error(&truth).expect("survivors remain");
        assert!(err.is_finite());
        // Crashes lose weight but gossip keeps estimates in a sane range.
        assert!(err < 15.0, "err {err}");
    }

    #[test]
    fn estimate_of_zero_weight_node_is_zero() {
        let p = PushSumProtocol {
            sum: Vector::from([1.0]),
            weight: 0.0,
        };
        assert_eq!(p.estimate().as_slice(), &[0.0]);
    }
}
