#![warn(missing_docs)]
//! Baselines and comparators for distributed classification.
//!
//! * [`PushSumProtocol`] / [`PushSumSim`] — weight-based *regular average
//!   aggregation* in the style of Kempe et al. \[13\], the comparator the
//!   paper's Figures 3 and 4 call “regular”: it averages **all** values,
//!   outliers included.
//! * [`kmeans`] — centralized Lloyd k-means with farthest-point seeding, a
//!   quality reference for the centroid instance.
//! * [`em_central`] — centralized EM fit of a Gaussian Mixture to raw
//!   points, a quality reference for the GM instance.
//! * [`newscast`] — Newscast EM (Kowalczyk & Vlassis \[14\]): nodes
//!   simulate centralized EM with gossip-averaged M-step aggregates — the
//!   paper's “multiple aggregation iterations” comparison point.
//! * [`HistogramInstance`] — a third instantiation of the generic
//!   algorithm: collections summarized as fixed-range histograms, the
//!   gossip distribution-estimation approach of Haridasan & van Renesse
//!   \[11\] (inherently one-dimensional, which is exactly the limitation
//!   the paper points out).

pub mod em_central;
mod histogram;
pub mod kmeans;
pub mod newscast;
mod push_sum;

pub use histogram::{HistogramInstance, HistogramSummary};
pub use push_sum::{PushSumProtocol, PushSumSim};
