//! Figure 1: why centroids are not enough.
//!
//! Two collections — a tight one (A) and a wide one (B) — and a new value
//! closer to A's centroid. Centroid association assigns the value to A;
//! density-based (Gaussian) association correctly prefers B, whose much
//! larger variance makes the value far more likely under it.

use distclass_core::{CoreError, GaussianSummary};
use distclass_linalg::{Matrix, Vector};

/// Which collection a rule associates the new value with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// The tight collection.
    A,
    /// The wide collection.
    B,
}

impl std::fmt::Display for Choice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Choice::A => write!(f, "A"),
            Choice::B => write!(f, "B"),
        }
    }
}

/// The outcome of the Figure 1 scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Result {
    /// Distance from the new value to A's centroid.
    pub dist_a: f64,
    /// Distance from the new value to B's centroid.
    pub dist_b: f64,
    /// Log-density of the new value under A.
    pub log_pdf_a: f64,
    /// Log-density of the new value under B.
    pub log_pdf_b: f64,
    /// What the centroid rule picks.
    pub centroid_choice: Choice,
    /// What the Gaussian rule picks.
    pub gaussian_choice: Choice,
}

/// Runs the scenario with the canonical parameters: A = N((0,0), 0.2·I),
/// B = N((5,0), 9·I), new value (2, 0).
///
/// # Errors
///
/// Propagates density-evaluation failures (cannot occur for these
/// parameters).
pub fn run() -> Result<Fig1Result, CoreError> {
    let a = GaussianSummary::new(Vector::from([0.0, 0.0]), Matrix::identity(2).scaled(0.2));
    let b = GaussianSummary::new(Vector::from([5.0, 0.0]), Matrix::identity(2).scaled(9.0));
    let value = Vector::from([2.0, 0.0]);
    run_with(&a, &b, &value)
}

/// Runs the scenario with explicit collections and probe value.
///
/// # Errors
///
/// Propagates density-evaluation failures.
pub fn run_with(
    a: &GaussianSummary,
    b: &GaussianSummary,
    value: &Vector,
) -> Result<Fig1Result, CoreError> {
    let dist_a = value.distance(&a.mean);
    let dist_b = value.distance(&b.mean);
    let log_pdf_a = a.log_pdf(value, 0.0)?;
    let log_pdf_b = b.log_pdf(value, 0.0)?;
    Ok(Fig1Result {
        dist_a,
        dist_b,
        log_pdf_a,
        log_pdf_b,
        centroid_choice: if dist_a <= dist_b {
            Choice::A
        } else {
            Choice::B
        },
        gaussian_choice: if log_pdf_a >= log_pdf_b {
            Choice::A
        } else {
            Choice::B
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_scenario_disagrees_as_in_the_paper() {
        let r = run().unwrap();
        assert_eq!(r.centroid_choice, Choice::A);
        assert_eq!(r.gaussian_choice, Choice::B);
        assert!(r.dist_a < r.dist_b);
        assert!(r.log_pdf_b > r.log_pdf_a);
    }

    #[test]
    fn equal_variances_make_rules_agree() {
        let a = GaussianSummary::new(Vector::from([0.0]), distclass_linalg::Matrix::identity(1));
        let b = GaussianSummary::new(Vector::from([5.0]), distclass_linalg::Matrix::identity(1));
        let r = run_with(&a, &b, &Vector::from([1.0])).unwrap();
        assert_eq!(r.centroid_choice, Choice::A);
        assert_eq!(r.gaussian_choice, Choice::A);
    }
}
