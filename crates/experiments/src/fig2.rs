//! Figure 2: Gaussian-Mixture classification of multidimensional data.
//!
//! `n = 1000` fully connected nodes take 2-D readings drawn from three
//! Gaussians (the fence/fire scenario); the GM algorithm with `k = 7` runs
//! until convergence. The paper shows the resulting mixture is a usable
//! estimate of the input distribution; we quantify that by matching each
//! generating component to the nearest estimated component and reporting
//! weight/mean/covariance errors, plus average log-likelihoods against a
//! centralized EM fit.

use std::sync::Arc;

use distclass_baselines::em_central;
use distclass_core::{CoreError, EmConfig, GaussianSummary, GmInstance};
use distclass_gossip::{GossipConfig, RoundSim};
use distclass_linalg::Vector;
use distclass_net::Topology;
use distclass_obs::TelemetrySeries;

use crate::data::{figure2_components, sample_mixture, TrueComponent};
use crate::sampled_dispersion;

/// Figure 2 parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Config {
    /// Number of nodes (paper: 1000).
    pub n: usize,
    /// Collection bound (paper: 7).
    pub k: usize,
    /// Maximum rounds before giving up on stability.
    pub max_rounds: u64,
    /// Workload / engine seed.
    pub seed: u64,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Fig2Config {
            n: 1000,
            k: 7,
            max_rounds: 80,
            seed: 42,
        }
    }
}

/// A generating component matched against the estimated mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchedComponent {
    /// The generating component's mixing weight.
    pub true_weight: f64,
    /// Relative weight of the matched estimated collection.
    pub est_weight: f64,
    /// Distance between true and estimated means.
    pub mean_error: f64,
    /// Frobenius distance between true and estimated covariances.
    pub cov_error: f64,
}

/// Figure 2 outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Result {
    /// Rounds executed before stabilization (or the cap).
    pub rounds: u64,
    /// Sampled dispersion at the end (agreement across nodes).
    pub dispersion: f64,
    /// Per-round convergence telemetry (dispersion is the sampled
    /// estimate, not the full n² check).
    pub telemetry: TelemetrySeries,
    /// Node 0's final mixture as `(relative weight, summary)`.
    pub mixture: Vec<(f64, GaussianSummary)>,
    /// Per-generating-component recovery quality.
    pub matches: Vec<MatchedComponent>,
    /// Collections with (near-)zero covariance — the “x” singletons in the
    /// paper's plot.
    pub singleton_collections: usize,
    /// Average log-likelihood of the input values under node 0's mixture.
    pub avg_ll_distributed: f64,
    /// Average log-likelihood under a centralized EM fit with the same `k`.
    pub avg_ll_centralized: f64,
    /// Average log-likelihood under the generating mixture (upper bound
    /// reference).
    pub avg_ll_truth: f64,
}

/// Runs the Figure 2 experiment.
///
/// # Errors
///
/// Propagates [`CoreError`] from instance construction and the baselines.
pub fn run(cfg: &Fig2Config) -> Result<Fig2Result, CoreError> {
    let truth = figure2_components();
    let (values, _labels) = sample_mixture(cfg.n, &truth, cfg.seed);

    let instance = Arc::new(GmInstance::new(cfg.k)?);
    let gossip = GossipConfig {
        seed: cfg.seed,
        ..GossipConfig::default()
    };
    let mut sim = RoundSim::new(Topology::complete(cfg.n), instance, &values, &gossip);

    // Run until the sampled dispersion stabilizes (cheaper than the full
    // n² agreement check the tests use on small networks): the telemetry
    // series carries one sample per round and encodes the stopping rule.
    let mut telemetry = TelemetrySeries::new();
    let mut rounds = 0;
    for _ in 0..cfg.max_rounds {
        sim.run_round();
        rounds += 1;
        let mut sample = sim.telemetry_sample();
        sample.dispersion = Some(sampled_dispersion(&sim, 16));
        telemetry.push(sample);
        if telemetry.converged(5, 1e-3, 0.5) {
            break;
        }
    }

    let node0 = sim.classification_of(sim.live_nodes()[0]);
    let total = node0.total_weight();
    let mixture: Vec<(f64, GaussianSummary)> = node0
        .iter()
        .map(|c| (c.weight.fraction_of(total), c.summary.clone()))
        .collect();

    let matches = match_components(&truth, &mixture);
    let singleton_collections = mixture.iter().filter(|(_, s)| s.cov.trace() < 1e-6).count();

    let model: Vec<(GaussianSummary, f64)> = mixture.iter().map(|(w, s)| (s.clone(), *w)).collect();
    let avg_ll_distributed = em_central::avg_log_likelihood(&values, &model, 1e-6)?;
    let central = em_central::fit(&values, cfg.k, &EmConfig::default())?;
    let avg_ll_centralized = em_central::avg_log_likelihood(&values, &central.model, 1e-6)?;
    let truth_model: Vec<(GaussianSummary, f64)> = truth
        .iter()
        .map(|c| (c.gaussian.clone(), c.weight))
        .collect();
    let avg_ll_truth = em_central::avg_log_likelihood(&values, &truth_model, 1e-6)?;

    let dispersion = telemetry
        .last()
        .and_then(|s| s.dispersion)
        .unwrap_or_else(|| sampled_dispersion(&sim, 16));
    Ok(Fig2Result {
        rounds,
        dispersion,
        telemetry,
        mixture,
        matches,
        singleton_collections,
        avg_ll_distributed,
        avg_ll_centralized,
        avg_ll_truth,
    })
}

fn match_components(
    truth: &[TrueComponent],
    mixture: &[(f64, GaussianSummary)],
) -> Vec<MatchedComponent> {
    truth
        .iter()
        .map(|t| {
            let (w, s) = mixture
                .iter()
                .min_by(|(_, a), (_, b)| {
                    let da = a.mean.distance(&t.gaussian.mean);
                    let db = b.mean.distance(&t.gaussian.mean);
                    da.total_cmp(&db)
                })
                .expect("non-empty mixture");
            MatchedComponent {
                true_weight: t.weight,
                est_weight: *w,
                mean_error: s.mean.distance(&t.gaussian.mean),
                cov_error: covariance_error(&s.cov, &t.gaussian.cov),
            }
        })
        .collect()
}

fn covariance_error(a: &distclass_linalg::Matrix, b: &distclass_linalg::Matrix) -> f64 {
    let mut diff = a.clone();
    diff.axpy(-1.0, b);
    diff.frobenius_norm()
}

/// The fraction of input values whose maximum-responsibility component in
/// `mixture` matches the heaviest component nearest their generating mean —
/// a crude classification-accuracy proxy used by integration tests.
pub fn soft_assignment_quality(
    values: &[Vector],
    labels: &[usize],
    truth: &[TrueComponent],
    mixture: &[(f64, GaussianSummary)],
) -> f64 {
    let mut correct = 0usize;
    for (v, &label) in values.iter().zip(labels.iter()) {
        // Estimated component with the highest weighted density.
        let est = mixture
            .iter()
            .enumerate()
            .max_by(|(_, (wa, a)), (_, (wb, b))| {
                let da = wa * a.pdf(v, 1e-6).unwrap_or(0.0);
                let db = wb * b.pdf(v, 1e-6).unwrap_or(0.0);
                da.total_cmp(&db)
            })
            .map(|(i, _)| i)
            .expect("non-empty mixture");
        // Which generating mean that estimated component is closest to.
        let est_mean = &mixture[est].1.mean;
        let nearest_truth = truth
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = a.gaussian.mean.distance(est_mean);
                let db = b.gaussian.mean.distance(est_mean);
                da.total_cmp(&db)
            })
            .map(|(i, _)| i)
            .expect("non-empty truth");
        if nearest_truth == label {
            correct += 1;
        }
    }
    correct as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down Figure 2 (64 nodes) keeps unit-test time low while
    /// still exercising the full path; the real-size run lives in the
    /// experiment binary and EXPERIMENTS.md.
    #[test]
    fn small_fig2_recovers_components() {
        let cfg = Fig2Config {
            n: 64,
            k: 5,
            max_rounds: 60,
            seed: 7,
        };
        let r = run(&cfg).unwrap();
        assert!(r.rounds > 0);
        assert_eq!(r.matches.len(), 3);
        for m in &r.matches {
            assert!(m.mean_error < 2.5, "mean error {}", m.mean_error);
        }
        // The distributed fit should be within ~15 % of the centralized
        // log-likelihood (both are heuristics).
        assert!(
            r.avg_ll_distributed > r.avg_ll_centralized - 0.15 * r.avg_ll_centralized.abs(),
            "distributed {} vs centralized {}",
            r.avg_ll_distributed,
            r.avg_ll_centralized
        );
    }
}
