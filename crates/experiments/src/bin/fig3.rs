//! Regenerates Figure 3: outlier removal as the outlier separation Δ
//! sweeps 0..=25 (950 inliers ~ N(0, I), 50 outliers ~ N((0,Δ), 0.1·I),
//! k = 2, f_min = 5·10⁻⁵).
//!
//! Usage: `fig3 [--quick]` — `--quick` shrinks the network and the sweep.

use distclass_experiments::fig3::{self, Fig3Config};
use distclass_experiments::report::{f, pct, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        Fig3Config {
            n: 150,
            n_outliers: 8,
            deltas: vec![0.0, 2.0, 5.0, 10.0, 15.0, 20.0, 25.0],
            rounds: 30,
            ..Fig3Config::default()
        }
    } else {
        Fig3Config::default()
    };
    eprintln!(
        "running fig3: n={} outliers={} rounds={} sweep={} points",
        cfg.n,
        cfg.n_outliers,
        cfg.rounds,
        cfg.deltas.len()
    );

    println!(
        "# Figure 3 — outlier removal vs separation (n={}, {} outliers, k=2)\n",
        cfg.n, cfg.n_outliers
    );
    let mut t = Table::new(vec![
        "delta".into(),
        "missed outliers %".into(),
        "robust error".into(),
        "regular error".into(),
        "true outliers".into(),
    ]);
    for &delta in &cfg.deltas {
        let row = fig3::run_point(&cfg, delta).expect("figure 3 configuration is valid");
        eprintln!(
            "  delta={delta:>5}: missed={:.1}% robust={:.4} regular={:.4}",
            row.missed_outliers * 100.0,
            row.robust_error,
            row.regular_error
        );
        t.row(vec![
            format!("{delta}"),
            pct(row.missed_outliers),
            f(row.robust_error),
            f(row.regular_error),
            row.true_outliers.to_string(),
        ]);
    }
    println!("{}", t.to_markdown());
    println!("\nCSV:\n{}", t.to_csv());
}
