//! Runs every figure experiment in sequence (the full evaluation).
//!
//! Usage: `all_experiments [--quick]` — pass `--quick` for a fast smoke
//! run with reduced sizes.

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let exe = std::env::current_exe().expect("current executable path");
    let dir = exe.parent().expect("binary directory");
    for fig in [
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "related_work",
        "topology_study",
        "scaling_study",
        "convergence_trace",
    ] {
        println!("\n================ {fig} ================\n");
        let mut cmd = Command::new(dir.join(fig));
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {fig}: {e}; build the workspace first"));
        assert!(status.success(), "{fig} failed with {status}");
    }
}
