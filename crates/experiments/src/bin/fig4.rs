//! Regenerates Figure 4: per-round error of robust (GM) vs regular
//! (push-sum) mean estimation, with and without per-round crashes
//! (p = 0.05, Δ = 10).
//!
//! Usage: `fig4 [--quick]`.

use distclass_experiments::fig4::{self, Fig4Config};
use distclass_experiments::report::{f, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        Fig4Config {
            n: 150,
            n_outliers: 8,
            rounds: 30,
            ..Fig4Config::default()
        }
    } else {
        Fig4Config::default()
    };
    eprintln!(
        "running fig4: n={} outliers={} delta={} rounds={} crash_prob={}",
        cfg.n, cfg.n_outliers, cfg.delta, cfg.rounds, cfg.crash_prob
    );
    let rows = fig4::run(&cfg).expect("figure 4 configuration is valid");

    println!(
        "# Figure 4 — crash robustness (n={}, Δ={}, crash p={})\n",
        cfg.n, cfg.delta, cfg.crash_prob
    );
    let mut t = Table::new(vec![
        "round".into(),
        "robust (no crashes)".into(),
        "regular (no crashes)".into(),
        "robust (crashes)".into(),
        "regular (crashes)".into(),
        "live nodes".into(),
    ]);
    for row in &rows {
        t.row(vec![
            row.round.to_string(),
            f(row.robust_no_crash),
            f(row.regular_no_crash),
            f(row.robust_crash),
            f(row.regular_crash),
            row.live_nodes_crash.to_string(),
        ]);
    }
    println!("{}", t.to_markdown());
    println!("\nCSV:\n{}", t.to_csv());
}
