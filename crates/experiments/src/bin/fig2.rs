//! Regenerates Figure 2: GM classification of 2-D three-Gaussian data
//! (n = 1000 complete graph, k = 7, run until convergence).
//!
//! Usage: `fig2 [--quick]` — `--quick` shrinks the network for smoke runs.

use distclass_experiments::fig2::{self, Fig2Config};
use distclass_experiments::report::{f, pct, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        Fig2Config {
            n: 128,
            k: 5,
            max_rounds: 60,
            ..Fig2Config::default()
        }
    } else {
        Fig2Config::default()
    };
    eprintln!(
        "running fig2: n={} k={} max_rounds={} seed={}",
        cfg.n, cfg.k, cfg.max_rounds, cfg.seed
    );
    let r = fig2::run(&cfg).expect("figure 2 configuration is valid");

    println!(
        "# Figure 2 — Gaussian Mixture classification (n={}, k={})\n",
        cfg.n, cfg.k
    );
    println!(
        "Converged after {} rounds; sampled dispersion {}.\n",
        r.rounds,
        f(r.dispersion)
    );

    println!("## Estimated mixture at node 0\n");
    println!("(equidensity ellipse: 1-σ semi-axes and orientation, as in the paper's plot)\n");
    let mut t = Table::new(vec![
        "weight %".into(),
        "mean".into(),
        "ellipse semi-axes".into(),
        "orientation °".into(),
        "singleton".into(),
    ]);
    for (w, s) in &r.mixture {
        let (axes, angle) = match s.cov.symmetric_eigen_2x2() {
            Ok(((l1, v1), (l2, _))) => (
                format!("{:.2} × {:.2}", l1.max(0.0).sqrt(), l2.max(0.0).sqrt()),
                format!("{:.0}", v1[1].atan2(v1[0]).to_degrees()),
            ),
            Err(_) => ("-".into(), "-".into()),
        };
        t.row(vec![
            pct(*w),
            format!("{}", s.mean),
            axes,
            angle,
            if s.cov.trace() < 1e-6 {
                "x".into()
            } else {
                "".into()
            },
        ]);
    }
    println!("{}", t.to_markdown());

    println!("## Recovery of the generating components\n");
    let mut t = Table::new(vec![
        "true weight %".into(),
        "est weight %".into(),
        "mean error".into(),
        "cov error (frobenius)".into(),
    ]);
    for m in &r.matches {
        t.row(vec![
            pct(m.true_weight),
            pct(m.est_weight),
            f(m.mean_error),
            f(m.cov_error),
        ]);
    }
    println!("{}", t.to_markdown());

    println!("## Fit quality (average log-likelihood of the inputs)\n");
    let mut t = Table::new(vec!["model".into(), "avg log-likelihood".into()]);
    t.row(vec![
        "distributed GM (node 0)".into(),
        f(r.avg_ll_distributed),
    ]);
    t.row(vec![
        "centralized EM (same k)".into(),
        f(r.avg_ll_centralized),
    ]);
    t.row(vec!["generating mixture".into(), f(r.avg_ll_truth)]);
    println!("{}", t.to_markdown());
    println!(
        "{} singleton collections (the x's in the paper's plot).",
        r.singleton_collections
    );
}
