//! Convergence speed across topologies (empirical counterpart to the
//! paper's any-connected-topology convergence theorem).
//!
//! Usage: `topology_study [--quick]`.

use distclass_experiments::report::{f, Table};
use distclass_experiments::topo::{self, TopoConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        TopoConfig {
            n: 36,
            max_rounds: 2000,
            ..TopoConfig::default()
        }
    } else {
        TopoConfig::default()
    };
    eprintln!("running topology_study: n={} tol={}", cfg.n, cfg.tol);

    println!(
        "# Topology study — rounds until dispersion < {} (n≈{})\n",
        cfg.tol, cfg.n
    );
    let mut t = Table::new(vec![
        "topology".into(),
        "nodes".into(),
        "edges".into(),
        "diameter".into(),
        "rounds to agree".into(),
        "final dispersion".into(),
    ]);
    for (name, topology) in topo::standard_topologies(cfg.n, cfg.seed) {
        let row = topo::run_topology(name, topology, &cfg).expect("valid config");
        eprintln!(
            "  {:<18} diameter {:>3} rounds {:?}",
            row.name, row.diameter, row.rounds_to_converge
        );
        t.row(vec![
            row.name.into(),
            row.n.to_string(),
            row.edges.to_string(),
            row.diameter.to_string(),
            row.rounds_to_converge
                .map(|r| r.to_string())
                .unwrap_or_else(|| format!(">{}", cfg.max_rounds)),
            f(row.final_dispersion),
        ]);
    }
    println!("{}", t.to_markdown());
}
