//! Traces the convergence proof's quantities on a live run: per-round
//! dispersion and the largest maximal reference angle `max_i ϕᵢ,max(t)`
//! (Lemma 2 says the latter never increases).
//!
//! Usage: `convergence_trace [--n <nodes>] [--rounds <rounds>]`.

use std::sync::Arc;

use distclass_core::{theory, CentroidInstance, Quantum};
use distclass_experiments::report::{f, Table};
use distclass_gossip::{GossipConfig, RoundSim};
use distclass_linalg::Vector;
use distclass_net::Topology;

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = arg("--n", 32) as usize;
    let rounds = arg("--rounds", 30);

    let values: Vec<Vector> = (0..n)
        .map(|i| Vector::from([if i % 2 == 0 { 0.0 } else { 8.0 } + 0.02 * i as f64]))
        .collect();
    let cfg = GossipConfig {
        audit: true,
        quantum: Quantum::new(1 << 16),
        ..GossipConfig::default()
    };
    let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(Topology::complete(n), inst, &values, &cfg);

    println!("# Convergence trace (n={n}, complete graph, centroid k=2)\n");
    let mut t = Table::new(vec![
        "round".into(),
        "dispersion".into(),
        "max_i phi_i_max (rad)".into(),
        "direction classes".into(),
        "max intra-class angle".into(),
    ]);
    let mut last_phi = f64::INFINITY;
    for round in 0..=rounds {
        if round > 0 {
            sim.run_round();
        }
        let classifications = sim.live_classifications();
        let pool = theory::aux_pool(classifications.iter().copied()).expect("audited run");
        let phi = theory::max_reference_angles(pool.iter().copied())
            .expect("non-empty pool")
            .into_iter()
            .fold(0.0_f64, f64::max);
        assert!(
            phi <= last_phi + 1e-9,
            "Lemma 2 violated at round {round}: {phi} > {last_phi}"
        );
        last_phi = phi;
        // Class formation (Lemma 3): group pool vectors by direction and
        // measure how tight each class has become.
        let classes = theory::direction_classes(&pool, 0.3);
        let mut intra: f64 = 0.0;
        for class in &classes {
            for (ai, &a) in class.iter().enumerate() {
                for &b in &class[ai + 1..] {
                    intra = intra.max(pool[a].angle(pool[b]));
                }
            }
        }
        t.row(vec![
            round.to_string(),
            f(sim.dispersion()),
            f(phi),
            classes.len().to_string(),
            f(intra),
        ]);
    }
    println!("{}", t.to_markdown());
    println!("Lemma 2 held at every round (the binary asserts it).");
}
