//! Regenerates Figure 1: centroid vs Gaussian association of a new value.

use distclass_experiments::fig1;
use distclass_experiments::report::{f, Table};

fn main() {
    let r = fig1::run().expect("figure 1 scenario is well defined");
    println!("# Figure 1 — associating a new value\n");
    println!(
        "Collection A: tight (cov 0.2·I at the origin); collection B: wide (cov 9·I at (5,0))."
    );
    println!("New value: (2, 0).\n");
    let mut t = Table::new(vec![
        "rule".into(),
        "score vs A".into(),
        "score vs B".into(),
        "choice".into(),
    ]);
    t.row(vec![
        "centroid distance (smaller wins)".into(),
        f(r.dist_a),
        f(r.dist_b),
        r.centroid_choice.to_string(),
    ]);
    t.row(vec![
        "gaussian log-density (larger wins)".into(),
        f(r.log_pdf_a),
        f(r.log_pdf_b),
        r.gaussian_choice.to_string(),
    ]);
    println!("{}", t.to_markdown());
    println!(
        "The centroid rule picks {}, the Gaussian rule picks {} — variance matters (Figure 1's point).",
        r.centroid_choice, r.gaussian_choice
    );
}
