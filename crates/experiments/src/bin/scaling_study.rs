//! Rounds-to-agreement as the network grows (gossip averaging scales
//! logarithmically on complete graphs; the classifier should track that).
//!
//! Usage: `scaling_study [--quick]`.

use distclass_experiments::report::{f, Table};
use distclass_experiments::scaling::{self, ScalingConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        ScalingConfig {
            sizes: vec![50, 100, 200],
            ..ScalingConfig::default()
        }
    } else {
        ScalingConfig::default()
    };
    eprintln!("running scaling_study: sizes {:?}", cfg.sizes);

    println!(
        "# Scaling study — rounds until dispersion < {} (complete graph, GM k={})\n",
        cfg.tol, cfg.k
    );
    let mut t = Table::new(vec![
        "n".into(),
        "rounds to agree".into(),
        "messages / node".into(),
        "final dispersion".into(),
    ]);
    for &n in &cfg.sizes {
        let row = scaling::run_size(n, &cfg).expect("valid config");
        eprintln!("  n={n}: rounds {:?}", row.rounds_to_converge);
        t.row(vec![
            n.to_string(),
            row.rounds_to_converge
                .map(|r| r.to_string())
                .unwrap_or_else(|| format!(">{}", cfg.max_rounds)),
            format!("{:.1}", row.messages as f64 / n as f64),
            f(row.final_dispersion),
        ]);
    }
    println!("{}", t.to_markdown());
}
