//! Quantifies the paper's related-work claims (§2): our algorithm vs
//! Newscast EM on the same workload, plus the wire-format message sizes
//! (dependent on k and d only, never on n).
//!
//! Usage: `related_work [--quick]`.

use distclass_experiments::related::{self, RelatedConfig};
use distclass_experiments::report::{f, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        RelatedConfig {
            n: 120,
            classify_rounds: 25,
            newscast_iters: 6,
            newscast_cycles: 15,
            ..RelatedConfig::default()
        }
    } else {
        RelatedConfig::default()
    };
    eprintln!(
        "running related_work: n={} classify_rounds={} newscast={}x{}",
        cfg.n, cfg.classify_rounds, cfg.newscast_iters, cfg.newscast_cycles
    );

    println!(
        "# Related work — distclass GM vs Newscast EM (n={})\n",
        cfg.n
    );
    println!(
        "Two collection bounds for the classifier: k equal to the number of\n\
         generating components (3 — no slack, early merges are irreversible)\n\
         and k = 5 (the paper itself gives slack: Figure 2 uses k = 7 for 3\n\
         components).\n"
    );
    let mut t = Table::new(vec![
        "protocol".into(),
        "k".into(),
        "rounds".into(),
        "messages".into(),
        "bytes/msg".into(),
        "avg log-likelihood".into(),
        "disagreement".into(),
    ]);
    for k in [3usize, 5] {
        let cfg_k = RelatedConfig { k, ..cfg.clone() };
        let rows = related::run(&cfg_k).expect("valid config");
        for r in &rows {
            t.row(vec![
                r.name.into(),
                k.to_string(),
                r.rounds.to_string(),
                r.messages.to_string(),
                r.bytes_per_message.to_string(),
                f(r.avg_log_likelihood),
                f(r.disagreement),
            ]);
        }
    }
    println!("{}", t.to_markdown());

    println!("## Wire sizes (codec output; independent of n)\n");
    let mut t = Table::new(vec!["k".into(), "d".into(), "bytes/message".into()]);
    for (k, d, bytes) in related::message_size_table(&[2, 4, 7], &[1, 2, 4, 8]) {
        t.row(vec![k.to_string(), d.to_string(), bytes.to_string()]);
    }
    println!("{}", t.to_markdown());
}
