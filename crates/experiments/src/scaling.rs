//! Scaling study: rounds to agreement as the network grows.
//!
//! The paper's weight-diffusion argument (Lemma 6, via Boyd et al.) puts
//! the algorithm in the gossip-averaging family, whose complete-graph
//! mixing time grows logarithmically in `n`. This experiment measures
//! rounds-to-agreement for the GM instance across network sizes and also
//! reports messages per node — which should track the round count, since
//! each node sends exactly one message per round regardless of `n`.

use std::sync::Arc;

use distclass_core::{CoreError, GmInstance};
use distclass_gossip::{GossipConfig, RoundSim};
use distclass_net::Topology;

use crate::data::{figure2_components, sample_mixture};
use crate::sampled_dispersion;

/// Parameters for the scaling study.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingConfig {
    /// Network sizes to sweep.
    pub sizes: Vec<usize>,
    /// Collection bound.
    pub k: usize,
    /// Dispersion threshold counting as agreement.
    pub tol: f64,
    /// Round budget per size.
    pub max_rounds: u64,
    /// Workload / engine seed.
    pub seed: u64,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            sizes: vec![50, 100, 200, 400, 800, 1600],
            k: 5,
            tol: 0.1,
            max_rounds: 300,
            seed: 42,
        }
    }
}

/// One size's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Network size.
    pub n: usize,
    /// Rounds until the sampled dispersion fell below the threshold
    /// (`None` = budget exhausted).
    pub rounds_to_converge: Option<u64>,
    /// Total messages sent when agreement was reached.
    pub messages: u64,
    /// Final sampled dispersion.
    pub final_dispersion: f64,
}

/// Measures one network size.
///
/// # Errors
///
/// Propagates [`CoreError`] from instance construction.
pub fn run_size(n: usize, cfg: &ScalingConfig) -> Result<ScalingRow, CoreError> {
    let (values, _) = sample_mixture(n, &figure2_components(), cfg.seed);
    let instance = Arc::new(GmInstance::new(cfg.k)?);
    let gossip = GossipConfig {
        seed: cfg.seed,
        ..GossipConfig::default()
    };
    let mut sim = RoundSim::new(Topology::complete(n), instance, &values, &gossip);
    let mut rounds_to_converge = None;
    for round in 1..=cfg.max_rounds {
        sim.run_round();
        if sampled_dispersion(&sim, 16) < cfg.tol {
            rounds_to_converge = Some(round);
            break;
        }
    }
    Ok(ScalingRow {
        n,
        rounds_to_converge,
        messages: sim.metrics().messages_sent,
        final_dispersion: sampled_dispersion(&sim, 16),
    })
}

/// Runs the full sweep.
///
/// # Errors
///
/// Propagates the first failing size.
pub fn run(cfg: &ScalingConfig) -> Result<Vec<ScalingRow>, CoreError> {
    cfg.sizes.iter().map(|&n| run_size(n, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_grow_sublinearly_with_n() {
        let cfg = ScalingConfig {
            sizes: vec![],
            k: 3,
            tol: 0.15,
            max_rounds: 200,
            seed: 9,
        };
        let small = run_size(40, &cfg).unwrap();
        let large = run_size(320, &cfg).unwrap();
        let rs = small.rounds_to_converge.expect("small converges");
        let rl = large.rounds_to_converge.expect("large converges");
        // 8× the nodes must cost far less than 8× the rounds (log-like).
        assert!(
            rl < rs * 4,
            "rounds grew too fast: {rs} @ n=40 vs {rl} @ n=320"
        );
    }
}
