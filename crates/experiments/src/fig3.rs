//! Figure 3: outlier removal vs. outlier separation Δ.
//!
//! 950 inliers from the standard 2-D normal, 50 outliers from
//! `N((0, Δ), 0.1·I)`, `k = 2`. For each Δ the protocol runs to
//! convergence; we report:
//!
//! * the fraction of outlier weight incorrectly assigned to the good
//!   collection (“missed outliers”, exact via auxiliary mixture vectors);
//! * the robust error — node-average distance of the heaviest collection's
//!   mean from the true mean (0,0);
//! * the regular error — node-average error of push-sum average
//!   aggregation over the same inputs, which has no outlier handling.

use std::sync::Arc;

use distclass_baselines::PushSumSim;
use distclass_core::{outlier, CoreError, GmInstance};
use distclass_gossip::{GossipConfig, RoundSim};
use distclass_linalg::Vector;
use distclass_net::Topology;

use crate::data::{outlier_mixture, F_MIN};

/// Figure 3 parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Config {
    /// Number of nodes (paper: 1000).
    pub n: usize,
    /// Number of outlier-distribution values (paper: 50).
    pub n_outliers: usize,
    /// Outlier separations to sweep (paper: 0..=25).
    pub deltas: Vec<f64>,
    /// Rounds per run (the paper runs to convergence; tens of rounds
    /// suffice on a complete graph).
    pub rounds: u64,
    /// Density threshold defining ground-truth outliers.
    pub f_min: f64,
    /// Workload / engine seed.
    pub seed: u64,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            n: 1000,
            n_outliers: 50,
            deltas: (0..=25).map(|d| d as f64).collect(),
            rounds: 40,
            f_min: F_MIN,
            seed: 42,
        }
    }
}

/// One sweep point of Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// The outlier separation.
    pub delta: f64,
    /// Fraction of ground-truth-outlier weight that ended up in the good
    /// collection (system-wide, exact).
    pub missed_outliers: f64,
    /// Node-average robust-mean error.
    pub robust_error: f64,
    /// Node-average push-sum (regular aggregation) error.
    pub regular_error: f64,
    /// Number of ground-truth outliers at this Δ.
    pub true_outliers: usize,
}

/// Runs one sweep point.
///
/// # Errors
///
/// Propagates [`CoreError`] from instance construction.
pub fn run_point(cfg: &Fig3Config, delta: f64) -> Result<Fig3Row, CoreError> {
    let (values, flags) = outlier_mixture(cfg.n, cfg.n_outliers, delta, cfg.f_min, cfg.seed);
    let truth = Vector::zeros(2);

    // Robust protocol: GM with k = 2, audited so outlier accounting is
    // exact.
    let instance = Arc::new(GmInstance::new(2)?);
    let gossip = GossipConfig {
        seed: cfg.seed,
        audit: true,
        ..GossipConfig::default()
    };
    // The error probe (‖good-collection mean − truth‖ per node) makes the
    // robust error a convergence-telemetry read instead of a hand-rolled
    // aggregation loop.
    let mut sim = RoundSim::new(Topology::complete(cfg.n), instance, &values, &gossip)
        .with_error_probe({
            let truth = truth.clone();
            move |c| {
                outlier::good_collection_index(c)
                    .map(|good| c.collection(good).summary.mean.distance(&truth))
            }
        });
    sim.run_rounds(cfg.rounds);

    // Robust error: average over nodes of ‖good-collection mean − truth‖.
    let robust_error = sim.telemetry_sample().mean_error.unwrap_or(f64::INFINITY);
    // Missed outliers: system-wide outlier weight in good collections over
    // total outlier weight.
    let mut outlier_in_good = 0.0;
    let mut outlier_total = 0.0;
    let live = sim.live_nodes();
    for &i in &live {
        let c = sim.classification_of(i);
        let good = outlier::good_collection_index(c).expect("non-empty classification");
        for (idx, col) in c.iter().enumerate() {
            let aux = col.aux.as_ref().expect("audited run");
            for (j, &flag) in flags.iter().enumerate() {
                if flag {
                    let w = aux.component(j);
                    outlier_total += w;
                    if idx == good {
                        outlier_in_good += w;
                    }
                }
            }
        }
    }
    let missed_outliers = if outlier_total > 0.0 {
        outlier_in_good / outlier_total
    } else {
        0.0
    };

    // Regular aggregation over the same inputs and round budget.
    let mut push = PushSumSim::new(Topology::complete(cfg.n), &values, cfg.seed);
    push.run_rounds(cfg.rounds);
    // No crash model here, so live nodes always remain; ∞ (not NaN) is
    // the honest answer if that ever changes.
    let regular_error = push.mean_error(&truth).unwrap_or(f64::INFINITY);

    Ok(Fig3Row {
        delta,
        missed_outliers,
        robust_error,
        regular_error,
        true_outliers: flags.iter().filter(|&&f| f).count(),
    })
}

/// Runs the full Δ sweep.
///
/// # Errors
///
/// Propagates the first failing sweep point.
pub fn run(cfg: &Fig3Config) -> Result<Vec<Fig3Row>, CoreError> {
    cfg.deltas.iter().map(|&d| run_point(cfg, d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Fig3Config {
        Fig3Config {
            n: 120,
            n_outliers: 6,
            deltas: vec![],
            rounds: 25,
            f_min: F_MIN,
            seed: 11,
        }
    }

    #[test]
    fn far_outliers_are_removed() {
        let cfg = small_cfg();
        let row = run_point(&cfg, 15.0).unwrap();
        assert!(row.missed_outliers < 0.2, "missed {}", row.missed_outliers);
        // Robust beats regular by a wide margin at large Δ.
        assert!(
            row.robust_error < row.regular_error,
            "robust {} regular {}",
            row.robust_error,
            row.regular_error
        );
        assert!(row.robust_error < 0.3, "robust {}", row.robust_error);
    }

    #[test]
    fn near_outliers_hardly_matter() {
        let cfg = small_cfg();
        let row = run_point(&cfg, 1.0).unwrap();
        // Inseparable outliers barely move the mean: both errors small.
        assert!(row.regular_error < 0.3, "regular {}", row.regular_error);
        assert!(row.robust_error < 0.5, "robust {}", row.robust_error);
    }

    #[test]
    fn regular_error_grows_with_delta() {
        let cfg = small_cfg();
        let lo = run_point(&cfg, 2.0).unwrap();
        let hi = run_point(&cfg, 20.0).unwrap();
        assert!(
            hi.regular_error > lo.regular_error + 0.3,
            "lo {} hi {}",
            lo.regular_error,
            hi.regular_error
        );
    }
}
