//! Figure 4: crash robustness and convergence speed.
//!
//! Same workload as Figure 3 with Δ = 10; after every round each node
//! crashes with probability 0.05. Four protocols run side by side —
//! robust (GM, k = 2) and regular (push-sum) aggregation, each with and
//! without crashes — and the node-average error of the mean estimate is
//! recorded per round.

use std::sync::Arc;

use distclass_baselines::PushSumSim;
use distclass_core::{outlier, CoreError, GmInstance};
use distclass_gossip::{GossipConfig, RoundSim};
use distclass_linalg::Vector;
use distclass_net::{CrashModel, Topology};
use distclass_obs::TelemetrySeries;

use crate::data::{outlier_mixture, F_MIN};

/// Figure 4 parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Config {
    /// Number of nodes (paper: 1000).
    pub n: usize,
    /// Number of outlier-distribution values (paper: 50).
    pub n_outliers: usize,
    /// Outlier separation (paper: 10).
    pub delta: f64,
    /// Rounds to simulate (paper plots ~60).
    pub rounds: u64,
    /// Per-round crash probability for the crashy runs (paper: 0.05).
    pub crash_prob: f64,
    /// Workload / engine seed.
    pub seed: u64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            n: 1000,
            n_outliers: 50,
            delta: 10.0,
            rounds: 60,
            crash_prob: 0.05,
            seed: 42,
        }
    }
}

/// Per-round errors of the four protocols.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Round number (1-based: after this many rounds).
    pub round: u64,
    /// Robust (GM) error without crashes.
    pub robust_no_crash: f64,
    /// Regular (push-sum) error without crashes.
    pub regular_no_crash: f64,
    /// Robust error with crashes.
    pub robust_crash: f64,
    /// Regular error with crashes.
    pub regular_crash: f64,
    /// Live nodes remaining in the crashy robust run.
    pub live_nodes_crash: usize,
}

/// Runs the Figure 4 experiment, returning one row per round.
///
/// # Errors
///
/// Propagates [`CoreError`] from instance construction.
pub fn run(cfg: &Fig4Config) -> Result<Vec<Fig4Row>, CoreError> {
    let (values, _flags) = outlier_mixture(cfg.n, cfg.n_outliers, cfg.delta, F_MIN, cfg.seed);
    let truth = Vector::zeros(2);
    let topo = Topology::complete(cfg.n);

    let gossip_plain = GossipConfig {
        seed: cfg.seed,
        ..GossipConfig::default()
    };
    let gossip_crash = GossipConfig {
        seed: cfg.seed.wrapping_add(1),
        crash: CrashModel::per_round(cfg.crash_prob),
        ..GossipConfig::default()
    };

    // The robust runs carry an error probe (outlier-filtered mean vs. the
    // true mean) so the convergence telemetry does the per-round error
    // aggregation; a node with no robust mean yet reports `None` and is
    // skipped by the mean rather than averaged as a NaN.
    let mut robust_plain = RoundSim::new(
        topo.clone(),
        Arc::new(GmInstance::new(2)?),
        &values,
        &gossip_plain,
    )
    .with_error_probe({
        let truth = truth.clone();
        move |c| outlier::robust_mean(c).map(|m| m.distance(&truth))
    });
    let mut robust_crash = RoundSim::new(
        topo.clone(),
        Arc::new(GmInstance::new(2)?),
        &values,
        &gossip_crash,
    )
    .with_error_probe({
        let truth = truth.clone();
        move |c| outlier::robust_mean(c).map(|m| m.distance(&truth))
    });
    let mut regular_plain = PushSumSim::new(topo.clone(), &values, cfg.seed);
    let mut regular_crash = PushSumSim::with_crash_model(
        topo,
        &values,
        cfg.seed.wrapping_add(1),
        CrashModel::per_round(cfg.crash_prob),
    );

    // Collect the two robust trajectories as telemetry series, then zip
    // them with the push-sum error stats into the figure's rows.
    let mut series_plain = TelemetrySeries::new();
    let mut series_crash = TelemetrySeries::new();
    let mut regular_errors = Vec::with_capacity(cfg.rounds as usize);
    for _ in 0..cfg.rounds {
        robust_plain.run_round();
        robust_crash.run_round();
        regular_plain.run_round();
        regular_crash.run_round();
        series_plain.push(robust_plain.telemetry_sample());
        series_crash.push(robust_crash.telemetry_sample());
        regular_errors.push((
            regular_plain.mean_error(&truth),
            regular_crash.mean_error(&truth),
        ));
    }

    // An all-dead (or all-outlier) network has no estimate; ∞ keeps the
    // row honest without poisoning neighbors the way a NaN would.
    let or_inf = |e: Option<f64>| e.unwrap_or(f64::INFINITY);
    let rows = series_plain
        .samples
        .iter()
        .zip(&series_crash.samples)
        .zip(&regular_errors)
        .enumerate()
        .map(|(i, ((plain, crash), &(reg_plain, reg_crash)))| Fig4Row {
            round: i as u64 + 1,
            robust_no_crash: or_inf(plain.mean_error),
            regular_no_crash: or_inf(reg_plain),
            robust_crash: or_inf(crash.mean_error),
            regular_crash: or_inf(reg_crash),
            live_nodes_crash: crash.live,
        })
        .collect();
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robust_beats_regular_with_and_without_crashes() {
        let cfg = Fig4Config {
            n: 100,
            n_outliers: 5,
            delta: 10.0,
            rounds: 30,
            crash_prob: 0.03,
            seed: 5,
        };
        let rows = run(&cfg).unwrap();
        assert_eq!(rows.len(), 30);
        let last = rows.last().unwrap();
        assert!(
            last.robust_no_crash < last.regular_no_crash,
            "robust {} regular {}",
            last.robust_no_crash,
            last.regular_no_crash
        );
        assert!(
            last.robust_crash < last.regular_crash + 0.1,
            "robust {} regular {}",
            last.robust_crash,
            last.regular_crash
        );
        assert!(last.live_nodes_crash < 100);
        // Convergence: the robust error settles within tens of rounds.
        let early = &rows[2];
        assert!(last.robust_no_crash <= early.robust_no_crash + 1e-9);
    }
}
