//! Synthetic workload generators for the evaluation (§5.3).
//!
//! All generators are deterministic given a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use distclass_core::GaussianSummary;
use distclass_linalg::{Matrix, Vector};

/// A ground-truth mixture component: a Gaussian and its mixing weight.
#[derive(Debug, Clone, PartialEq)]
pub struct TrueComponent {
    /// The generating Gaussian.
    pub gaussian: GaussianSummary,
    /// Fraction of values drawn from it.
    pub weight: f64,
}

/// Samples one point from `N(mean, cov)` via the Cholesky transform.
///
/// # Panics
///
/// Panics if `cov` is not factorizable (all covariances in this module are
/// well-conditioned by construction).
pub fn sample_gaussian<R: Rng>(rng: &mut R, mean: &Vector, cov: &Matrix) -> Vector {
    let chol = cov
        .cholesky_with_jitter(1e-12, 8)
        .expect("workload covariance must be factorizable");
    let z: Vector = (0..mean.dim()).map(|_| standard_normal(rng)).collect();
    let mut x = chol.transform(&z);
    x += mean;
    x
}

/// A standard normal sample (Box–Muller).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The three-Gaussian 2-D distribution of Figure 2: temperature readings
/// along a fence whose right side is close to a fire. Component x is the
/// sensor position along the fence, y the reading.
pub fn figure2_components() -> Vec<TrueComponent> {
    vec![
        TrueComponent {
            gaussian: GaussianSummary::new(
                Vector::from([0.0, 0.0]),
                Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 1.0]]).expect("static shape"),
            ),
            weight: 0.4,
        },
        TrueComponent {
            gaussian: GaussianSummary::new(
                Vector::from([8.0, 2.0]),
                Matrix::from_rows(&[&[1.0, 0.5], &[0.5, 2.0]]).expect("static shape"),
            ),
            weight: 0.35,
        },
        TrueComponent {
            gaussian: GaussianSummary::new(
                Vector::from([4.0, 9.0]),
                Matrix::from_rows(&[&[2.0, -0.8], &[-0.8, 1.0]]).expect("static shape"),
            ),
            weight: 0.25,
        },
    ]
}

/// Draws `n` values from a ground-truth mixture. Returns the values and
/// the index of the generating component for each.
///
/// # Panics
///
/// Panics if `components` is empty or weights do not sum to ~1.
pub fn sample_mixture(
    n: usize,
    components: &[TrueComponent],
    seed: u64,
) -> (Vec<Vector>, Vec<usize>) {
    assert!(!components.is_empty(), "mixture needs components");
    let total: f64 = components.iter().map(|c| c.weight).sum();
    assert!((total - 1.0).abs() < 1e-9, "mixing weights must sum to 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let mut u: f64 = rng.gen();
        let mut chosen = components.len() - 1;
        for (j, c) in components.iter().enumerate() {
            if u < c.weight {
                chosen = j;
                break;
            }
            u -= c.weight;
        }
        let g = &components[chosen].gaussian;
        values.push(sample_gaussian(&mut rng, &g.mean, &g.cov));
        labels.push(chosen);
    }
    (values, labels)
}

/// The Figure 3/4 workload: `n - n_outliers` inliers from the standard
/// 2-D normal and `n_outliers` outliers from `N((0, Δ), 0.1·I)`.
///
/// Returns `(values, outlier_flags)` where the flag marks *density-based*
/// ground truth: a value is an outlier when its density under the standard
/// normal is below `f_min` (the paper's definition — some generated
/// “outlier-distribution” values near the inlier mass do not count, and
/// rare extreme inliers do).
pub fn outlier_mixture(
    n: usize,
    n_outliers: usize,
    delta: f64,
    f_min: f64,
    seed: u64,
) -> (Vec<Vector>, Vec<bool>) {
    assert!(n_outliers <= n, "more outliers than values");
    let mut rng = StdRng::seed_from_u64(seed);
    let std_normal = GaussianSummary::new(Vector::zeros(2), Matrix::identity(2));
    let outlier_mean = Vector::from([0.0, delta]);
    let outlier_cov = Matrix::identity(2).scaled(0.1);

    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        if i < n - n_outliers {
            values.push(sample_gaussian(&mut rng, &std_normal.mean, &std_normal.cov));
        } else {
            values.push(sample_gaussian(&mut rng, &outlier_mean, &outlier_cov));
        }
    }
    let flags = values
        .iter()
        .map(|v| {
            std_normal
                .pdf(v, 0.0)
                .expect("standard normal density always defined")
                < f_min
        })
        .collect();
    (values, flags)
}

/// The introduction's grid-computing scenario: half the machines lightly
/// loaded around `lo`, half heavily loaded around `hi` (1-D utilizations
/// in `[0, 1]`, truncated).
pub fn bimodal_load(n: usize, lo: f64, hi: f64, spread: f64, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let center = if i % 2 == 0 { lo } else { hi };
            let x = (center + spread * standard_normal(&mut rng)).clamp(0.0, 1.0);
            Vector::from([x])
        })
        .collect()
}

/// The paper's outlier-density threshold for the standard normal.
pub const F_MIN: f64 = 5e-5;

#[cfg(test)]
mod tests {
    use super::*;
    use distclass_linalg::WeightedAccumulator;

    #[test]
    fn sample_gaussian_matches_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean = Vector::from([1.0, -2.0]);
        let cov = Matrix::from_rows(&[&[2.0, 0.7], &[0.7, 1.0]]).unwrap();
        let mut acc = WeightedAccumulator::new(2);
        for _ in 0..20_000 {
            acc.push(&sample_gaussian(&mut rng, &mean, &cov), 1.0);
        }
        let m = acc.moments().unwrap();
        assert!(m.mean.approx_eq(&mean, 0.05), "mean {}", m.mean);
        assert!(m.cov.approx_eq(&cov, 0.1), "cov {}", m.cov);
    }

    #[test]
    fn standard_normal_basic_stats() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05);
        assert!((var - 1.0).abs() < 0.05);
    }

    #[test]
    fn mixture_labels_respect_weights() {
        let comps = figure2_components();
        let (values, labels) = sample_mixture(10_000, &comps, 3);
        assert_eq!(values.len(), 10_000);
        let frac0 = labels.iter().filter(|&&l| l == 0).count() as f64 / 10_000.0;
        assert!((frac0 - 0.4).abs() < 0.03, "frac0 {frac0}");
    }

    #[test]
    fn outlier_mixture_flags_track_delta() {
        // Far outliers: essentially all 50 flagged; close: almost none.
        let (_, far_flags) = outlier_mixture(1000, 50, 20.0, F_MIN, 4);
        let far = far_flags.iter().filter(|&&f| f).count();
        assert!(far >= 50, "far {far}");
        let (_, near_flags) = outlier_mixture(1000, 50, 0.0, F_MIN, 4);
        let near = near_flags.iter().filter(|&&f| f).count();
        assert!(near < 20, "near {near}");
    }

    #[test]
    fn bimodal_load_within_bounds() {
        let vals = bimodal_load(100, 0.1, 0.9, 0.05, 5);
        assert!(vals.iter().all(|v| (0.0..=1.0).contains(&v[0])));
        let low = vals.iter().filter(|v| v[0] < 0.5).count();
        assert!(low > 30 && low < 70);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = outlier_mixture(100, 5, 10.0, F_MIN, 9);
        let b = outlier_mixture(100, 5, 10.0, F_MIN, 9);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
