//! Topology study: convergence speed of the classification algorithm
//! across network shapes.
//!
//! The paper proves convergence for *any* strongly connected topology but
//! (deliberately) gives no time bound — asynchrony and topology make one
//! impossible in general. This experiment charts the empirical cost: the
//! rounds needed for all nodes to agree (dispersion below a threshold) as
//! a function of topology and its diameter.

use std::sync::Arc;

use distclass_core::{CentroidInstance, CoreError};
use distclass_gossip::{GossipConfig, RoundSim};
use distclass_linalg::Vector;
use distclass_net::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::sampled_dispersion;

/// Parameters for the topology study.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoConfig {
    /// Nodes per topology (grid uses the nearest square).
    pub n: usize,
    /// Dispersion threshold counting as “converged”.
    pub tol: f64,
    /// Round budget per topology.
    pub max_rounds: u64,
    /// Workload / engine seed.
    pub seed: u64,
}

impl Default for TopoConfig {
    fn default() -> Self {
        TopoConfig {
            n: 100,
            tol: 0.05,
            max_rounds: 3000,
            seed: 42,
        }
    }
}

/// One topology's convergence measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoRow {
    /// Topology name.
    pub name: &'static str,
    /// Nodes in the instantiated topology.
    pub n: usize,
    /// Directed edges.
    pub edges: usize,
    /// Graph diameter in hops.
    pub diameter: usize,
    /// Rounds until dispersion fell below the threshold (`None` = budget
    /// exhausted).
    pub rounds_to_converge: Option<u64>,
    /// Final dispersion.
    pub final_dispersion: f64,
}

/// Builds the studied topologies for `n` nodes.
pub fn standard_topologies(n: usize, seed: u64) -> Vec<(&'static str, Topology)> {
    let side = (n as f64).sqrt().round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut topologies: Vec<(&'static str, Topology)> = vec![
        ("complete", Topology::complete(n)),
        ("star", Topology::star(n)),
        ("grid", Topology::grid(side, side)),
        ("torus", Topology::torus(side.max(3), side.max(3))),
        ("ring", Topology::ring(n)),
        ("directed_cycle", Topology::directed_cycle(n)),
    ];
    if let Ok(er) = Topology::erdos_renyi(n, 2.0 * (n as f64).ln() / n as f64, &mut rng) {
        topologies.push(("erdos_renyi", er));
    }
    if let Ok((rgg, _)) = Topology::random_geometric(n, 0.25, &mut rng) {
        topologies.push(("random_geometric", rgg));
    }
    topologies
}

/// Measures rounds-to-agreement for one topology.
///
/// # Errors
///
/// Propagates [`CoreError`] from instance construction.
pub fn run_topology(
    name: &'static str,
    topology: Topology,
    cfg: &TopoConfig,
) -> Result<TopoRow, CoreError> {
    let n = topology.len();
    // Per-node jitter keeps summaries distinguishable until weight has
    // genuinely mixed across the network (identical inputs would make the
    // dispersion metric report agreement after a single exchange).
    let values: Vec<Vector> = (0..n)
        .map(|i| Vector::from([if i % 2 == 0 { 0.0 } else { 8.0 } + 0.02 * i as f64]))
        .collect();
    let edges = topology.edge_count();
    let diameter = topology.diameter();

    let instance = Arc::new(CentroidInstance::new(2)?);
    let gossip = GossipConfig {
        seed: cfg.seed,
        ..GossipConfig::default()
    };
    let mut sim = RoundSim::new(topology, instance, &values, &gossip);

    let mut rounds_to_converge = None;
    for round in 1..=cfg.max_rounds {
        sim.run_round();
        if sampled_dispersion(&sim, 24) < cfg.tol {
            rounds_to_converge = Some(round);
            break;
        }
    }
    Ok(TopoRow {
        name,
        n,
        edges,
        diameter,
        rounds_to_converge,
        final_dispersion: sampled_dispersion(&sim, 24),
    })
}

/// Runs the full study.
///
/// # Errors
///
/// Propagates the first failing topology.
pub fn run(cfg: &TopoConfig) -> Result<Vec<TopoRow>, CoreError> {
    standard_topologies(cfg.n, cfg.seed)
        .into_iter()
        .map(|(name, t)| run_topology(name, t, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denser_graphs_converge_faster() {
        let cfg = TopoConfig {
            n: 36,
            tol: 0.05,
            max_rounds: 2000,
            seed: 3,
        };
        let complete = run_topology("complete", Topology::complete(36), &cfg).unwrap();
        let ring = run_topology("ring", Topology::ring(36), &cfg).unwrap();
        let rc = complete.rounds_to_converge.expect("complete converges");
        let rr = ring.rounds_to_converge.expect("ring converges");
        assert!(rc < rr, "complete {rc} rounds vs ring {rr}");
    }

    #[test]
    fn all_standard_topologies_converge() {
        let cfg = TopoConfig {
            n: 25,
            tol: 0.1,
            max_rounds: 4000,
            seed: 5,
        };
        for row in run(&cfg).unwrap() {
            assert!(
                row.rounds_to_converge.is_some(),
                "{} did not converge (dispersion {})",
                row.name,
                row.final_dispersion
            );
        }
    }
}
