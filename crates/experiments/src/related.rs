//! Related-work comparison (paper §2): the classification algorithm versus
//! **Newscast EM** (Kowalczyk & Vlassis), which simulates centralized EM
//! with gossip-averaged M-steps. The paper's claim — Newscast-style
//! algorithms “require multiple aggregation iterations, each similar in
//! length to one complete run of our algorithm” with comparable message
//! sizes — is quantified here: rounds, messages, per-message floats, and
//! model quality (average log-likelihood) side by side.

use std::sync::Arc;

use distclass_baselines::{em_central, newscast};
use distclass_core::{CoreError, GaussianSummary, GmInstance};
use distclass_gossip::{codec, GossipConfig, RoundSim};
use distclass_linalg::Vector;
use distclass_net::Topology;

use crate::data::{figure2_components, sample_mixture};
use crate::sampled_dispersion;

/// Parameters for the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RelatedConfig {
    /// Number of nodes.
    pub n: usize,
    /// Mixture components to estimate.
    pub k: usize,
    /// Round budget for the classification algorithm.
    pub classify_rounds: u64,
    /// Newscast outer EM iterations.
    pub newscast_iters: usize,
    /// Newscast gossip cycles per EM iteration.
    pub newscast_cycles: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for RelatedConfig {
    fn default() -> Self {
        RelatedConfig {
            n: 500,
            k: 3,
            classify_rounds: 40,
            newscast_iters: 10,
            newscast_cycles: 20,
            seed: 42,
        }
    }
}

/// One protocol's cost/quality row.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolRow {
    /// Protocol name.
    pub name: &'static str,
    /// Communication rounds executed.
    pub rounds: u64,
    /// Total point-to-point messages.
    pub messages: u64,
    /// Bytes per message on the wire (our codec for the classifier; float
    /// equivalent for Newscast).
    pub bytes_per_message: usize,
    /// Average log-likelihood of the inputs under node 0's final model.
    pub avg_log_likelihood: f64,
    /// Agreement across nodes (lower is better; classification distance
    /// for the classifier, max mean-distance for Newscast).
    pub disagreement: f64,
}

/// Runs both protocols on the same three-Gaussian workload.
///
/// # Errors
///
/// Propagates [`CoreError`] from either protocol.
pub fn run(cfg: &RelatedConfig) -> Result<Vec<ProtocolRow>, CoreError> {
    let (values, _) = sample_mixture(cfg.n, &figure2_components(), cfg.seed);

    // --- Our algorithm: GM classification. ---
    let instance = Arc::new(GmInstance::new(cfg.k)?);
    let gossip = GossipConfig {
        seed: cfg.seed,
        ..GossipConfig::default()
    };
    let mut sim = RoundSim::new(Topology::complete(cfg.n), instance, &values, &gossip);
    sim.run_rounds(cfg.classify_rounds);
    let c = sim.classification_of(0);
    let total = c.total_weight();
    let model: Vec<(GaussianSummary, f64)> = c
        .iter()
        .map(|col| (col.summary.clone(), col.weight.fraction_of(total)))
        .collect();
    let classify_row = ProtocolRow {
        name: "distclass GM",
        rounds: cfg.classify_rounds,
        messages: sim.metrics().messages_sent,
        bytes_per_message: codec::gm_message_size(cfg.k, 2),
        avg_log_likelihood: em_central::avg_log_likelihood(&values, &model, 1e-6)?,
        disagreement: sampled_dispersion(&sim, 16),
    };

    // --- Newscast EM. ---
    let ncfg = newscast::NewscastConfig {
        k: cfg.k,
        em_iters: cfg.newscast_iters,
        cycles_per_iter: cfg.newscast_cycles,
        reg: 1e-6,
        seed: cfg.seed,
    };
    let out = newscast::run(&Topology::complete(cfg.n), &values, &ncfg)?;
    let newscast_ll = em_central::avg_log_likelihood(&values, &out.models[0], 1e-6)?;
    let disagreement = out.models[1..]
        .iter()
        .map(|m| model_distance(&out.models[0], m))
        .fold(0.0, f64::max);
    let newscast_row = ProtocolRow {
        name: "newscast EM",
        rounds: out.rounds,
        messages: out.messages,
        bytes_per_message: out.floats_per_message * 8,
        avg_log_likelihood: newscast_ll,
        disagreement,
    };

    Ok(vec![classify_row, newscast_row])
}

fn model_distance(a: &[(GaussianSummary, f64)], b: &[(GaussianSummary, f64)]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|((ga, _), (gb, _))| ga.mean.distance(&gb.mean))
        .fold(0.0, f64::max)
}

/// Wire-size table: encoded message bytes for (k, d) sweeps. Constant in
/// `n` by construction; the function exists so the experiment binary and
/// tests state the claim with real encoder output rather than arithmetic.
pub fn message_size_table(ks: &[usize], ds: &[usize]) -> Vec<(usize, usize, usize)> {
    use distclass_core::{Classification, Collection, Weight};
    use distclass_linalg::Matrix;
    let mut rows = Vec::new();
    for &k in ks {
        for &d in ds {
            let c: Classification<GaussianSummary> = (0..k)
                .map(|i| {
                    Collection::new(
                        GaussianSummary::new(Vector::zeros(d), Matrix::identity(d)),
                        Weight::from_grains(i as u64 + 1),
                    )
                })
                .collect();
            let encoded = codec::encode_gm(&c).expect("valid classification");
            rows.push((k, d, encoded.len()));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_needs_fewer_rounds_for_similar_quality() {
        let cfg = RelatedConfig {
            n: 120,
            k: 3,
            classify_rounds: 25,
            newscast_iters: 6,
            newscast_cycles: 15,
            seed: 7,
        };
        let rows = run(&cfg).expect("valid config");
        let ours = &rows[0];
        let theirs = &rows[1];
        // The paper's claim: Newscast needs multiple aggregation phases,
        // each comparable to one full classifier run.
        assert!(
            theirs.rounds >= 2 * ours.rounds,
            "ours {} rounds, theirs {}",
            ours.rounds,
            theirs.rounds
        );
        // Both should fit the data reasonably (within 15 % of each other).
        assert!(
            (ours.avg_log_likelihood - theirs.avg_log_likelihood).abs()
                < 0.15 * ours.avg_log_likelihood.abs(),
            "ours {} theirs {}",
            ours.avg_log_likelihood,
            theirs.avg_log_likelihood
        );
    }

    #[test]
    fn message_sizes_do_not_depend_on_n() {
        let rows = message_size_table(&[2, 7], &[2, 4]);
        assert_eq!(rows.len(), 4);
        // Recompute with a "bigger network" — same sizes, by construction
        // the encoder has no n input at all; the table just proves the
        // sizes are modest and k/d-determined.
        for &(k, d, bytes) in &rows {
            assert_eq!(bytes, codec::gm_message_size(k, d));
            assert!(bytes < 2048);
        }
    }
}
