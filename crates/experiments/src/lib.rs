#![warn(missing_docs)]
//! Experiment harness regenerating the paper's evaluation (Figures 1–4).
//!
//! Each `figN` module is a library entry point with a config struct and a
//! `run` function returning structured results; the `src/bin/figN`
//! binaries print them as tables (markdown + CSV) with the paper-scale
//! default parameters. See `EXPERIMENTS.md` at the repository root for the
//! recorded paper-vs-measured comparison.
//!
//! | Experiment | What it shows | Regenerate with |
//! |---|---|---|
//! | [`fig1`] | centroid vs Gaussian association | `cargo run -p distclass-experiments --release --bin fig1` |
//! | [`fig2`] | GM classification of 2-D data, n=1000, k=7 | `... --bin fig2` |
//! | [`fig3`] | outlier removal vs separation Δ | `... --bin fig3` |
//! | [`fig4`] | crash robustness & convergence speed | `... --bin fig4` |
//! | [`related`] | vs Newscast EM + wire sizes (§2 claims) | `... --bin related_work` |
//! | [`topo`] | rounds-to-agreement across topologies | `... --bin topology_study` |
//! | trace | per-round Lemma-2/3 quantities on a live run | `... --bin convergence_trace` |
//! | [`scaling`] | rounds-to-agreement vs network size | `... --bin scaling_study` |

pub mod data;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod related;
pub mod report;
pub mod scaling;
pub mod topo;

use distclass_core::{convergence, Instance};
use distclass_gossip::RoundSim;

/// Dispersion over (up to) the first `sample` live nodes — an agreement
/// estimate that stays cheap on 1000-node networks, where the exact
/// all-pairs check would dominate the experiment.
pub fn sampled_dispersion<I: Instance>(sim: &RoundSim<I>, sample: usize) -> f64 {
    let live = sim.live_nodes();
    let classifications: Vec<_> = live
        .iter()
        .take(sample)
        .map(|&i| sim.classification_of(i))
        .collect();
    convergence::dispersion(sim.instance().as_ref(), classifications)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distclass_core::CentroidInstance;
    use distclass_gossip::GossipConfig;
    use distclass_linalg::Vector;
    use distclass_net::Topology;
    use std::sync::Arc;

    #[test]
    fn sampled_dispersion_shrinks_with_rounds() {
        let values: Vec<Vector> = (0..24)
            .map(|i| Vector::from([if i % 2 == 0 { 0.0 } else { 4.0 }]))
            .collect();
        let inst = Arc::new(CentroidInstance::new(2).unwrap());
        let mut sim = RoundSim::new(
            Topology::complete(24),
            inst,
            &values,
            &GossipConfig::default(),
        );
        let before = sampled_dispersion(&sim, 8);
        sim.run_rounds(30);
        let after = sampled_dispersion(&sim, 8);
        assert!(after < before, "before {before} after {after}");
        assert!(after < 0.2);
    }
}
