//! Plain-text table / CSV rendering for experiment outputs.

/// A simple column-aligned table that can also render as CSV.
///
/// # Example
///
/// ```
/// use distclass_experiments::report::Table;
///
/// let mut t = Table::new(vec!["x".into(), "y".into()]);
/// t.row(vec!["1".into(), "2".into()]);
/// assert!(t.to_markdown().contains("| 1 | 2 |"));
/// assert_eq!(t.to_csv(), "x,y\n1,2\n");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Renders as CSV (no quoting — experiment cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 4 decimal places (the precision used in
/// EXPERIMENTS.md).
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a percentage with 1 decimal place.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into(), "4".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |\n|---|---|\n"));
        assert!(md.contains("| 3 | 4 |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456), "1.2346");
        assert_eq!(pct(0.123), "12.3");
    }
}
