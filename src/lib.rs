#![warn(missing_docs)]
//! Facade crate re-exporting the distclass workspace.
pub use distclass_baselines as baselines;
pub use distclass_core as core;
pub use distclass_experiments as experiments;
pub use distclass_gossip as gossip;
pub use distclass_linalg as linalg;
pub use distclass_net as net;
pub use distclass_obs as obs;
pub use distclass_runtime as runtime;
