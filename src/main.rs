//! `distclass` — command-line driver for gossip-based distributed data
//! classification simulations.
//!
//! ```text
//! distclass classify --instance gm --n 200 --k 3 --topology complete --rounds 40
//! distclass classify --instance centroid --n 100 --k 2 --topology ring --values values.csv
//! distclass robust-average --n 300 --outliers 15 --delta 12
//! distclass topologies --n 64
//! ```
//!
//! Input values come from `--values <file>` (one comma-separated vector per
//! line) or are synthesized from the built-in three-Gaussian workload.
//! Output is a markdown table of node 0's final classification plus run
//! statistics; `--csv` switches to CSV.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use distclass::baselines::PushSumSim;
use distclass::core::{outlier, CentroidInstance, GmInstance, Instance};
use distclass::experiments::data::{figure2_components, outlier_mixture, sample_mixture, F_MIN};
use distclass::experiments::report::{f, Table};
use distclass::experiments::topo::{self, TopoConfig};
use distclass::gossip::wire::WireSummary;
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::linalg::Vector;
use distclass::net::Topology;
use distclass::obs::json::{field, num, unum};
use distclass::obs::{
    causal, prom, AnalyzeOptions, ByzReport, CausalReport, DynOptions, DynReport, Json, JsonlSink,
    Metrics, MetricsRegistry, ProfileReport, Profiler, ProfilerCore, TraceReport, TraceSink,
    Tracer,
};
use distclass::runtime::{
    run_channel_cluster, run_chaos_channel_cluster, run_chaos_udp_cluster, run_udp_cluster,
    AdversaryPlan, ChurnPlan, ClusterConfig, ClusterReport, DefenseConfig, DriftSchedule,
    FaultPlan, NodeOutcome,
};

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse() -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if iter.peek().map(|v| !v.starts_with("--")).unwrap_or(false) {
                    iter.next()
                } else {
                    None
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }
}

fn usage() -> &'static str {
    "usage: distclass <command> [options]\n\
     \n\
     commands:\n\
       classify        run a classification simulation\n\
         --instance gm|centroid   (default gm)\n\
         --n <nodes>              (default 200)\n\
         --k <collections>        (default 3)\n\
         --topology complete|ring|grid|star|cycle  (default complete)\n\
         --rounds <rounds>        (default 40)\n\
         --seed <seed>            (default 42)\n\
         --values <file>          CSV of input vectors (one per line)\n\
         --csv                    CSV output instead of markdown\n\
       robust-average  outlier-robust mean vs plain aggregation\n\
         --n / --outliers / --delta / --rounds / --seed\n\
       topologies      convergence-speed study across topologies\n\
         --n / --seed\n\
       run-cluster     run real concurrent peers (threads + UDP)\n\
         --transport udp|channel  (default udp)\n\
         --instance gm|centroid   (default centroid)\n\
         --n <nodes>              (default 16)\n\
         --k <collections>        (default 3)\n\
         --topology complete|ring|grid|star|cycle  (default complete)\n\
         --tick-ms <ms>           gossip period (default 2)\n\
         --tol <dispersion>       convergence threshold (default 0.05)\n\
         --max-secs <s>           wall-clock bound (default 30)\n\
         --faults <spec>          scripted fault plan, ';'-separated, e.g.\n\
                                  partition@200ms-1s:0-3;crash@500ms:2+300ms;\n\
                                  delay=0.2:1ms-5ms;dup=0.05;reorder=0.1\n\
         --fault-seed <seed>      fault-plan RNG seed (default: --seed)\n\
         --adversaries <spec>     scripted Byzantine adversaries, ';'-\n\
                                  separated, e.g. cartel@4,13:shift=1.2;\n\
                                  mint@5:units=16;sigma=1 (roles: mint,\n\
                                  poison, cartel); implies --defense and\n\
                                  forces the auditor on\n\
         --adversary-seed <seed>  adversary-plan RNG seed (default: --seed)\n\
         --drift <spec>           scripted sensor drift, ';'-separated, e.g.\n\
                                  step@300ms:0-3=5.0,5.0;\n\
                                  ramp@200ms-800ms:2=1.0,1.0>9.0,9.0/4;\n\
                                  redraw@500ms:0-7=5.0,5.0~1.0;decay=1/2\n\
                                  (drifting nodes decay old mass and inject\n\
                                  a fresh unit reading; forces the auditor\n\
                                  on)\n\
         --drift-seed <seed>      drift-schedule RNG seed (default: --seed)\n\
         --churn <spec>           scripted join/leave churn, ';'-separated,\n\
                                  e.g. join@400ms:16=5.0,5.0;leave@600ms:3\n\
                                  (join ids must be contiguous from the\n\
                                  cluster size; leavers hand their grains\n\
                                  off and drain; forces the auditor on)\n\
         --churn-seed <seed>      churn-plan RNG seed (default: --seed)\n\
         --defense                enable the Byzantine defenses (ingress\n\
                                  screen, stochastic audit, quarantine)\n\
                                  without scripting adversaries\n\
         --no-defense             run scripted adversaries undefended\n\
         --audit-every <ticks>    audit probe cadence (default 10)\n\
         --audit                  run the grain-conservation auditor\n\
         --trace <path>           write a JSONL event trace (grain deltas,\n\
                                  crashes, checkpoints, telemetry)\n\
         --trace-cap-mb <mb>      cap the trace file; the sink stops at the\n\
                                  cap and records a trace_truncated marker\n\
                                  (0 = unlimited, the default)\n\
         --metrics-json <path>    write the run summary as JSON\n\
         --dash-listen <addr>     serve the live operations console during\n\
                                  the run, e.g. 127.0.0.1:9184 — dashboard\n\
                                  at /, Prometheus /metrics, /snapshot.json\n\
                                  and the /events long-poll stream\n\
         --prom-listen <addr>     alias for --dash-listen (kept from when\n\
                                  the endpoint only served /metrics)\n\
         --metrics-prom <path>    write the metrics registry in Prometheus\n\
                                  text format at end of run\n\
         --profile <path>         write the hierarchical phase profile as\n\
                                  JSON at end of run (see prof-report)\n\
         --profile-folded <path>  write collapsed stacks (flamegraph.pl\n\
                                  input: 'thread;phase;phase self_us')\n\
         --seed / --values / --csv as for classify\n\
       trace-report    replay a --trace JSONL file offline\n\
         <trace.jsonl>            the trace to analyze (positional)\n\
         --json                   machine-readable report on stdout\n\
         --window <n>             convergence window (default 5)\n\
         --delta-tol <x>          convergence delta tolerance (default 1e-3)\n\
         --level <x>              convergence dispersion level (default 0.05)\n\
         exit status: 0 clean trace, 2 anomalies found, 1 usage/IO error\n\
       causal-report   happens-before analysis of a --trace JSONL file\n\
         <trace.jsonl>            the trace to analyze (positional)\n\
         --json                   machine-readable report on stdout\n\
         --dot                    Graphviz DOT of the causal DAG on stdout\n\
         --window / --delta-tol / --level as for trace-report\n\
         exit status: 0 clean trace, 2 anomalies found, 1 usage/IO error\n\
       byz-report      Byzantine-defense analysis of a --trace JSONL file:\n\
                       detection / false-positive rates, mean detection\n\
                       tick, audit bandwidth overhead, and reconciliation\n\
                       against the grain auditor's minted-weight measure\n\
         <trace.jsonl>            the trace to analyze (positional)\n\
         --json                   machine-readable report on stdout\n\
         exit status: 0 clean, 2 anomalies found, 1 usage/IO error\n\
       dyn-report      dynamic-workload analysis of a --trace JSONL file:\n\
                       converged/perturbed/re-converged episode timeline\n\
                       with settle times, sensor staleness, and the\n\
                       reconciliation of drift/churn grain flows against\n\
                       the grain auditor\n\
         <trace.jsonl>            the trace to analyze (positional)\n\
         --json                   machine-readable report on stdout\n\
         --window <n>             settle window, samples (default 3)\n\
         --delta-tol <x>          settle delta tolerance (default 1e-3)\n\
         --level <x>              settle dispersion level (default 1e-2)\n\
         exit status: 0 clean, 2 anomalies found, 1 usage/IO error\n\
       prof-report     inspect a --profile JSON file: per-thread busy/idle\n\
                       accounting, phase summary with p50/p95/p99, and the\n\
                       span tree\n\
         <profile.json>           the profile to inspect (positional)\n\
         --json                   lossless profile JSON on stdout\n\
         --collapsed              collapsed stacks (flamegraph.pl input)\n\
         exit status: 0 identities hold, 2 anomalies found, 1 usage/IO\n\
                      error\n\
       help            this text"
}

fn build_topology(name: &str, n: usize) -> Result<Topology, String> {
    match name {
        "complete" => Ok(Topology::complete(n)),
        "ring" => Ok(Topology::ring(n)),
        "grid" => {
            let side = (n as f64).sqrt().round() as usize;
            Ok(Topology::grid(side.max(2), side.max(2)))
        }
        "star" => Ok(Topology::star(n)),
        "cycle" => Ok(Topology::directed_cycle(n)),
        other => Err(format!("unknown topology {other}")),
    }
}

fn load_values(path: &str) -> Result<Vec<Vector>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let comps: Result<Vec<f64>, _> = line.split(',').map(|c| c.trim().parse()).collect();
        let comps = comps.map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        out.push(Vector::from(comps));
    }
    if out.is_empty() {
        return Err(format!("{path}: no values"));
    }
    let d = out[0].dim();
    if out.iter().any(|v| v.dim() != d) {
        return Err(format!("{path}: inconsistent dimensions"));
    }
    Ok(out)
}

fn cmd_classify(args: &Args) -> Result<(), String> {
    let n: usize = args.get("n", 200)?;
    let k: usize = args.get("k", 3)?;
    let rounds: u64 = args.get("rounds", 40)?;
    let seed: u64 = args.get("seed", 42)?;
    let topology_name = args.flag("topology").unwrap_or("complete");
    let instance_name = args.flag("instance").unwrap_or("gm");

    // The grid builder may round the node count (to the nearest square),
    // so size the cluster off the topology it actually produces.
    let (values, topology) = match args.flag("values") {
        Some(path) => {
            let values = load_values(path)?;
            let topology = build_topology(topology_name, values.len())?;
            if topology.len() != values.len() {
                return Err(format!(
                    "topology {topology_name} holds {} nodes but {path} has {} readings",
                    topology.len(),
                    values.len()
                ));
            }
            (values, topology)
        }
        None => {
            let topology = build_topology(topology_name, n)?;
            let values = sample_mixture(topology.len(), &figure2_components(), seed).0;
            (values, topology)
        }
    };
    let n = values.len();
    let gossip = GossipConfig {
        seed,
        ..GossipConfig::default()
    };

    let mut table = Table::new(vec!["weight %".into(), "summary".into(), "spread".into()]);
    let (rounds_run, dispersion, messages);
    match instance_name {
        "gm" => {
            let inst = Arc::new(GmInstance::new(k).map_err(|e| e.to_string())?);
            let mut sim = RoundSim::new(topology, inst, &values, &gossip);
            sim.run_rounds(rounds);
            let c = sim.classification_of(sim.live_nodes()[0]);
            let total = c.total_weight();
            for col in c.iter() {
                table.row(vec![
                    format!("{:.1}", col.weight.fraction_of(total) * 100.0),
                    format!("{}", col.summary.mean),
                    f(col.summary.cov.trace()),
                ]);
            }
            rounds_run = sim.round();
            dispersion = distclass::experiments::sampled_dispersion(&sim, 16);
            messages = sim.metrics().messages_sent;
        }
        "centroid" => {
            let inst = Arc::new(CentroidInstance::new(k).map_err(|e| e.to_string())?);
            let mut sim = RoundSim::new(topology, inst, &values, &gossip);
            sim.run_rounds(rounds);
            let c = sim.classification_of(sim.live_nodes()[0]);
            let total = c.total_weight();
            for col in c.iter() {
                table.row(vec![
                    format!("{:.1}", col.weight.fraction_of(total) * 100.0),
                    format!("{}", col.summary),
                    "-".into(),
                ]);
            }
            rounds_run = sim.round();
            dispersion = distclass::experiments::sampled_dispersion(&sim, 16);
            messages = sim.metrics().messages_sent;
        }
        other => return Err(format!("unknown instance {other}")),
    }

    println!(
        "# classification after {rounds_run} rounds ({instance_name}, k={k}, {topology_name}, n={n})\n"
    );
    if args.has("csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_markdown());
    }
    println!(
        "\nmessages: {messages}; dispersion (sampled): {}",
        f(dispersion)
    );
    Ok(())
}

fn cmd_run_cluster(args: &Args) -> Result<(), String> {
    let n: usize = args.get("n", 16)?;
    let k: usize = args.get("k", 3)?;
    let seed: u64 = args.get("seed", 42)?;
    let tick_ms: u64 = args.get("tick-ms", 2)?;
    let tol: f64 = args.get("tol", 0.05)?;
    let max_secs: u64 = args.get("max-secs", 30)?;
    let topology_name = args.flag("topology").unwrap_or("complete");
    let instance_name = args.flag("instance").unwrap_or("centroid");
    let transport = args.flag("transport").unwrap_or("udp");

    if !matches!(transport, "udp" | "channel") {
        return Err(format!("unknown transport {transport}"));
    }
    if !matches!(instance_name, "gm" | "centroid") {
        return Err(format!("unknown instance {instance_name}"));
    }
    // Flag hygiene: contradictory or vacuous combinations are user
    // errors, not runs with surprising defaults.
    if args.has("defense") && args.has("no-defense") {
        return Err("--defense and --no-defense contradict each other; pass at most one".into());
    }
    for plan_flag in ["faults", "drift", "churn"] {
        if args.has(plan_flag) && args.flag(plan_flag).is_none_or(|s| s.trim().is_empty()) {
            return Err(format!(
                "--{plan_flag} needs a non-empty spec; to run without it, drop the flag"
            ));
        }
    }
    for path_flag in ["profile", "profile-folded"] {
        if args.has(path_flag) && args.flag(path_flag).is_none_or(|s| s.trim().is_empty()) {
            return Err(format!("--{path_flag} needs a file path"));
        }
    }

    // The grid builder may round the node count (to the nearest square),
    // so size the cluster off the topology it actually produces.
    let (values, topology) = match args.flag("values") {
        Some(path) => {
            let values = load_values(path)?;
            let topology = build_topology(topology_name, values.len())?;
            if topology.len() != values.len() {
                return Err(format!(
                    "topology {topology_name} holds {} nodes but {path} has {} readings",
                    topology.len(),
                    values.len()
                ));
            }
            (values, topology)
        }
        None => {
            let topology = build_topology(topology_name, n)?;
            let values = sample_mixture(topology.len(), &figure2_components(), seed).0;
            (values, topology)
        }
    };
    let n = values.len();
    let fault_seed: u64 = args.get("fault-seed", seed)?;
    let plan = match args.flag("faults") {
        Some(spec) => Some(FaultPlan::parse(spec, fault_seed).map_err(|e| e.to_string())?),
        None => None,
    };
    let adversary_seed: u64 = args.get("adversary-seed", seed)?;
    let adversaries = match args.flag("adversaries") {
        Some(spec) => Some(Arc::new(
            AdversaryPlan::parse(spec, adversary_seed).map_err(|e| e.to_string())?,
        )),
        None => None,
    };
    let drift_seed: u64 = args.get("drift-seed", seed)?;
    let drift = match args.flag("drift") {
        Some(spec) => Some(Arc::new(
            DriftSchedule::parse(spec, drift_seed).map_err(|e| e.to_string())?,
        )),
        None => None,
    };
    let churn_seed: u64 = args.get("churn-seed", seed)?;
    let churn = match args.flag("churn") {
        Some(spec) => {
            let plan = ChurnPlan::parse(spec, churn_seed).map_err(|e| e.to_string())?;
            // The supervisor asserts these; fail them here as spec
            // errors instead of panics.
            let mut ids: Vec<usize> = plan.joins.iter().map(|j| j.node).collect();
            ids.sort_unstable();
            for (i, &id) in ids.iter().enumerate() {
                if id != n + i {
                    return Err(format!(
                        "--churn join ids must be contiguous from {n} (the cluster size); \
                         got id {id} where {} was expected",
                        n + i
                    ));
                }
            }
            let n_total = n + plan.joins.len();
            if let Some(l) = plan.leaves.iter().find(|l| l.node >= n_total) {
                return Err(format!(
                    "--churn leave targets unknown node {} (cluster has {n_total} \
                     nodes including joiners)",
                    l.node
                ));
            }
            Some(Arc::new(plan))
        }
        None => None,
    };
    let dyn_active = drift.is_some() || churn.is_some();
    // Scripting adversaries turns the defenses on unless the run asks to
    // watch them succeed (--no-defense).
    let defense = if args.has("no-defense") {
        None
    } else if args.has("defense") || adversaries.is_some() {
        Some(DefenseConfig {
            audit_every: args.get("audit-every", DefenseConfig::default().audit_every)?,
            ..DefenseConfig::default()
        })
    } else {
        None
    };
    let byz_active = adversaries.is_some() || defense.is_some();
    // --trace: every peer and the supervisor share one JSONL sink; the
    // handle is kept so flush errors surface as CLI errors at the end.
    let trace_cap: u64 = args.get("trace-cap-mb", 0)?;
    let trace_sink = match args.flag("trace") {
        Some(path) => {
            let sink = if trace_cap > 0 {
                JsonlSink::with_cap(path, trace_cap * 1024 * 1024)
            } else {
                JsonlSink::create(path)
            };
            Some(Arc::new(
                sink.map_err(|e| format!("cannot create trace {path}: {e}"))?,
            ))
        }
        None => None,
    };
    let tracer = match &trace_sink {
        Some(sink) => Tracer::new(Arc::clone(sink) as _),
        None => Tracer::disabled(),
    };
    // A metrics registry exists only when some consumer asked for it —
    // otherwise every handle stays a no-op. `--prom-listen` is an alias
    // for `--dash-listen`: the console's /metrics is byte-identical to
    // the scrape-only endpoint it grew out of.
    let dash_listen = args
        .flag("dash-listen")
        .or_else(|| args.flag("prom-listen"))
        .map(str::to_string);
    let registry = (dash_listen.is_some() || args.has("metrics-prom"))
        .then(|| Arc::new(MetricsRegistry::new()));
    let metrics = registry
        .as_ref()
        .map_or_else(Metrics::disabled, |r| Metrics::new(Arc::clone(r)));
    // The profiler runs when an export was asked for, and also whenever
    // the console is up so its phase-breakdown panel has data to show.
    // When a registry exists the core feeds `distclass_phase_us` through
    // it, so profile and registry views reconcile exactly.
    let profiler = (args.has("profile") || args.has("profile-folded") || dash_listen.is_some())
        .then(|| Arc::new(ProfilerCore::with_metrics(metrics.clone())))
        .map_or_else(Profiler::disabled, Profiler::new);
    let config = ClusterConfig {
        tick: Duration::from_millis(tick_ms),
        tol,
        seed,
        max_wall: Duration::from_secs(max_secs),
        // Byzantine and dynamic runs always audit: the auditor is the
        // ground truth `byz-report` reconciles minted weight against and
        // `dyn-report` reconciles injected/forgotten grains against.
        audit: args.has("audit") || byz_active || dyn_active,
        drift: drift.clone(),
        churn: churn.clone(),
        tracer,
        metrics,
        profiler,
        dash_listen,
        adversaries: adversaries.clone(),
        defense,
        ..ClusterConfig::default()
    };

    println!(
        "# {n} peers over {transport} ({instance_name}, k={k}, {topology_name}, tick {tick_ms}ms)\n"
    );
    if let Some(plan) = &plan {
        println!(
            "fault plan (seed {fault_seed}, digest {:016x}): {} partition(s), {} crash event(s), \
             delay {}, dup {:.2}, reorder {:.2}\n",
            plan.digest(),
            plan.partitions.len(),
            plan.crashes.len(),
            if plan.delay.is_some() { "on" } else { "off" },
            plan.duplicate,
            plan.reorder,
        );
    }
    if let Some(plan) = &adversaries {
        println!(
            "adversary plan (seed {adversary_seed}, digest {:016x}): {} adversaries \
             ({:?}), defenses {}\n",
            plan.digest(),
            plan.adversaries().len(),
            plan.adversaries(),
            if defense.is_some() { "on" } else { "OFF" },
        );
    }
    if let Some(d) = &drift {
        println!(
            "drift schedule (seed {drift_seed}, digest {:016x}): {} re-read event(s), \
             decay {}/{}\n",
            d.digest(),
            d.events.len(),
            d.decay.0,
            d.decay.1,
        );
    }
    if let Some(c) = &churn {
        println!(
            "churn plan (seed {churn_seed}, digest {:016x}): {} join(s), {} leave(s)\n",
            c.digest(),
            c.joins.len(),
            c.leaves.len(),
        );
    }
    match instance_name {
        "gm" => {
            let inst = Arc::new(GmInstance::new(k).map_err(|e| e.to_string())?);
            let report =
                dispatch_cluster(transport, &topology, inst, &values, plan.as_ref(), &config)?;
            print_cluster_report(&report, &config, n, args.has("csv"), |s| {
                format!("{}", s.mean)
            })?;
            finish_cluster_outputs(
                args,
                &report,
                &config,
                n,
                trace_sink.as_deref(),
                registry.as_deref(),
            )
        }
        "centroid" => {
            let inst = Arc::new(CentroidInstance::new(k).map_err(|e| e.to_string())?);
            let report =
                dispatch_cluster(transport, &topology, inst, &values, plan.as_ref(), &config)?;
            print_cluster_report(&report, &config, n, args.has("csv"), |s| format!("{s}"))?;
            finish_cluster_outputs(
                args,
                &report,
                &config,
                n,
                trace_sink.as_deref(),
                registry.as_deref(),
            )
        }
        other => Err(format!("unknown instance {other}")),
    }
}

/// Post-run outputs shared by every instance type: surface trace-sink
/// flush errors, write the `--metrics-json` summary, and dump the
/// metrics registry in Prometheus text format for `--metrics-prom`.
fn finish_cluster_outputs<S>(
    args: &Args,
    report: &ClusterReport<S>,
    config: &ClusterConfig,
    n: usize,
    trace_sink: Option<&JsonlSink>,
    registry: Option<&MetricsRegistry>,
) -> Result<(), String> {
    if let Some(sink) = trace_sink {
        sink.flush()
            .map_err(|e| format!("trace write failed: {e}"))?;
    }
    if let Some(path) = args.flag("metrics-json") {
        let json = cluster_metrics_json(report, config, n);
        std::fs::write(path, format!("{json}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = args.flag("metrics-prom") {
        let registry = registry.expect("registry exists whenever --metrics-prom is given");
        std::fs::write(path, prom::render(&registry.snapshot()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if args.has("profile") || args.has("profile-folded") {
        let profile = report
            .profile
            .as_ref()
            .expect("profiler runs whenever --profile/--profile-folded is given");
        if let Some(path) = args.flag("profile") {
            std::fs::write(path, format!("{}\n", profile.to_json()))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if let Some(path) = args.flag("profile-folded") {
            std::fs::write(path, profile.to_collapsed())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    Ok(())
}

/// `trace-report`: replay a `--trace` JSONL file into an offline report.
/// Exits 0 on a clean trace and 2 when the replay flags anomalies, so CI
/// can gate on trace health without parsing the output.
fn cmd_trace_report(args: &Args) -> Result<ExitCode, String> {
    let path = args
        .positional
        .get(1)
        .map(String::as_str)
        .or_else(|| args.flag("file"))
        .ok_or_else(|| format!("trace-report needs a trace file\n{}", usage()))?;
    let defaults = AnalyzeOptions::default();
    let opts = AnalyzeOptions {
        window: args.get("window", defaults.window)?,
        delta_tol: args.get("delta-tol", defaults.delta_tol)?,
        level: args.get("level", defaults.level)?,
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report = TraceReport::from_jsonl(&text, &opts).map_err(|e| format!("{path}: {e}"))?;
    if args.has("json") {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// `causal-report`: rebuild the happens-before DAG from a `--trace` JSONL
/// file and report the convergence critical path, grain provenance, and
/// influence matrix. Same exit-code contract as `trace-report`: 0 on a
/// clean causal layer, 2 when the reconstruction flags anomalies (cycles,
/// clock rewinds, provenance drift), 1 on usage/IO errors.
fn cmd_causal_report(args: &Args) -> Result<ExitCode, String> {
    let path = args
        .positional
        .get(1)
        .map(String::as_str)
        .or_else(|| args.flag("file"))
        .ok_or_else(|| format!("causal-report needs a trace file\n{}", usage()))?;
    let defaults = AnalyzeOptions::default();
    let opts = AnalyzeOptions {
        window: args.get("window", defaults.window)?,
        delta_tol: args.get("delta-tol", defaults.delta_tol)?,
        level: args.get("level", defaults.level)?,
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if args.has("dot") {
        let (events, _) = causal::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
        print!("{}", CausalReport::to_dot(&events, &opts));
        // The DOT view is a rendering aid, not a health check; keep the
        // exit-code contract tied to the analyzed report below.
        let report = CausalReport::from_events(&events, &opts);
        return Ok(if report.clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(2)
        });
    }
    let report = CausalReport::from_jsonl(&text, &opts).map_err(|e| format!("{path}: {e}"))?;
    if args.has("json") {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// `byz-report`: replay a `--trace` JSONL file into the offline
/// Byzantine-defense report — detection and false-positive rates, mean
/// detection tick, audit bandwidth overhead, and the reconciliation of
/// traced rejections against the grain auditor's minted-weight
/// measurement. Same exit-code contract as `trace-report`: 0 on a clean
/// report, 2 when the replay flags anomalies, 1 on usage/IO errors.
fn cmd_byz_report(args: &Args) -> Result<ExitCode, String> {
    let path = args
        .positional
        .get(1)
        .map(String::as_str)
        .or_else(|| args.flag("file"))
        .ok_or_else(|| format!("byz-report needs a trace file\n{}", usage()))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report = ByzReport::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    if args.has("json") {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// `dyn-report`: replay a `--trace` JSONL file into the offline
/// dynamic-workload report — the converged → perturbed → re-converged
/// episode timeline with per-episode settle times, sensor staleness, and
/// the reconciliation of traced drift/churn grain flows against the
/// auditor's settled injected/forgotten totals. Same exit-code contract
/// as `trace-report`: 0 on a clean report, 2 when the replay flags
/// anomalies, 1 on usage/IO errors.
fn cmd_dyn_report(args: &Args) -> Result<ExitCode, String> {
    let path = args
        .positional
        .get(1)
        .map(String::as_str)
        .or_else(|| args.flag("file"))
        .ok_or_else(|| format!("dyn-report needs a trace file\n{}", usage()))?;
    let defaults = DynOptions::default();
    let opts = DynOptions {
        window: args.get("window", defaults.window)?,
        delta_tol: args.get("delta-tol", defaults.delta_tol)?,
        level: args.get("level", defaults.level)?,
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report = DynReport::from_jsonl(&text, &opts).map_err(|e| format!("{path}: {e}"))?;
    if args.has("json") {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// `prof-report`: inspect a `--profile` JSON file. Text output shows the
/// per-thread busy/idle accounting and per-phase quantile summary;
/// `--json` re-emits the lossless document and `--collapsed` the
/// flamegraph.pl input. Same exit-code contract as `trace-report`: 0 when
/// the accounting identities hold, 2 when the profile carries anomalies,
/// 1 on usage/IO errors.
fn cmd_prof_report(args: &Args) -> Result<ExitCode, String> {
    let path = args
        .positional
        .get(1)
        .map(String::as_str)
        .or_else(|| args.flag("file"))
        .ok_or_else(|| format!("prof-report needs a profile JSON file\n{}", usage()))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report = ProfileReport::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    if args.has("collapsed") {
        print!("{}", report.to_collapsed());
    } else if args.has("json") {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// The `--metrics-json` document: the run summary, cluster-total runtime
/// counters, and the audit verdict when one was taken.
fn cluster_metrics_json<S>(report: &ClusterReport<S>, config: &ClusterConfig, n: usize) -> Json {
    let totals = report.total_metrics();
    let audit = match &report.audit {
        Some(a) => Json::Obj(vec![
            field("initial_grains", unum(a.initial_grains)),
            field("final_grains", unum(a.final_grains)),
            field("declared_gains", unum(a.declared_gains)),
            field("declared_losses", unum(a.declared_losses)),
            field("minted_grains", unum(a.minted_grains)),
            field("injected_grains", unum(a.injected_grains)),
            field("forgotten_grains", unum(a.forgotten_grains)),
            field("rejected_frames", unum(a.rejected_frames as u64)),
            field("crash_events", unum(a.crash_events as u64)),
            field("exact", Json::Bool(a.exact)),
            field("conserved", Json::Bool(a.conserved)),
            field("quiescent", Json::Bool(a.quiescent)),
            field("ok", Json::Bool(a.ok())),
        ]),
        None => Json::Null,
    };
    Json::Obj(vec![
        field("nodes", unum(n as u64)),
        field("converged", Json::Bool(report.converged)),
        field(
            "converged_after_ms",
            report
                .converged_after
                .map_or(Json::Null, |t| num(t.as_secs_f64() * 1e3)),
        ),
        field("wall_ms", num(report.wall.as_secs_f64() * 1e3)),
        field("drained", Json::Bool(report.drained)),
        field("final_dispersion", num(report.final_dispersion)),
        field("total_grains", unum(report.total_grains())),
        field(
            "expected_grains",
            unum(n as u64 * config.quantum.grains_per_unit()),
        ),
        field(
            "metrics",
            Json::Obj(vec![
                field("ticks", unum(totals.ticks)),
                field("msgs_sent", unum(totals.msgs_sent)),
                field("msgs_received", unum(totals.msgs_received)),
                field("acks_received", unum(totals.acks_received)),
                field("duplicates", unum(totals.duplicates)),
                field("retries", unum(totals.retries)),
                field("returned", unum(totals.returned)),
                field("bytes_sent", unum(totals.bytes_sent)),
                field("bytes_received", unum(totals.bytes_received)),
                field("audit_bytes", unum(totals.audit_bytes)),
                field("frames_rejected", unum(totals.frames_rejected)),
                field("decode_errors", unum(totals.decode_errors)),
                field("send_errors", unum(totals.send_errors)),
                field("checkpoints", unum(totals.checkpoints)),
                field("grains_split", unum(totals.grains_split)),
                field("grains_merged", unum(totals.grains_merged)),
                field("grains_returned", unum(totals.grains_returned)),
                field("drift_events", unum(totals.drift_events)),
                field("grains_injected", unum(totals.grains_injected)),
                field("grains_forgotten", unum(totals.grains_forgotten)),
                field("vacuous_passes", unum(totals.vacuous_passes)),
            ]),
        ),
        field("audit", audit),
    ])
}

fn dispatch_cluster<I>(
    transport: &str,
    topology: &Topology,
    instance: Arc<I>,
    values: &[I::Value],
    plan: Option<&FaultPlan>,
    config: &ClusterConfig,
) -> Result<ClusterReport<I::Summary>, String>
where
    I: Instance + Send + Sync + 'static,
    I::Summary: WireSummary + Send + 'static,
{
    match (transport, plan) {
        ("udp", None) => {
            run_udp_cluster(topology, instance, values, config).map_err(|e| e.to_string())
        }
        ("udp", Some(plan)) => run_chaos_udp_cluster(topology, instance, values, plan, config)
            .map_err(|e| e.to_string()),
        ("channel", None) => Ok(run_channel_cluster(topology, instance, values, config)),
        ("channel", Some(plan)) => Ok(run_chaos_channel_cluster(
            topology, instance, values, plan, config,
        )),
        (other, _) => Err(format!("unknown transport {other}")),
    }
}

fn print_cluster_report<S>(
    report: &ClusterReport<S>,
    config: &ClusterConfig,
    n: usize,
    csv: bool,
    render: impl Fn(&S) -> String,
) -> Result<(), String> {
    match report.converged_after {
        Some(t) => println!("converged after {t:?} (wall {:?})", report.wall),
        None => println!(
            "did not converge within {:?} (wall {:?})",
            config.max_wall, report.wall
        ),
    }
    println!(
        "drained: {}; final dispersion: {}",
        report.drained,
        f(report.final_dispersion)
    );
    if !report.convicted.is_empty() {
        println!("convicted (quarantined) peers: {:?}", report.convicted);
    }
    let expected = n as u64 * config.quantum.grains_per_unit();
    // Crash-restart and quarantine both shed grains legitimately (death
    // receipts, rejected frames); the audit, not the headline total, is
    // the authority on whether the books balance.
    let faulted = !report.convicted.is_empty()
        || report
            .nodes
            .iter()
            .any(|r| r.outcome != NodeOutcome::Completed || r.restarts > 0);
    let dynamic = config.drift.is_some() || config.churn.is_some();
    println!(
        "grains: {} (expected {expected}, {})",
        report.total_grains(),
        if report.total_grains() == expected {
            "conserved"
        } else if dynamic {
            "drifted from the static total — see the audit's injected/forgotten terms"
        } else if faulted {
            "short of the fault-free total — see the audit for the accounting"
        } else {
            "NOT conserved"
        }
    );

    let mut table = Table::new(vec![
        "node".into(),
        "classification".into(),
        "msgs out/in".into(),
        "retries".into(),
        "bytes out".into(),
        "restarts".into(),
        "last merge".into(),
    ]);
    for node in &report.nodes {
        let total = node.classification.total_weight();
        let mut parts: Vec<String> = node
            .classification
            .iter()
            .map(|c| {
                format!(
                    "{:.0}% {}",
                    c.weight.fraction_of(total) * 100.0,
                    render(&c.summary)
                )
            })
            .collect();
        parts.sort();
        let id = match node.outcome {
            NodeOutcome::Completed => node.id.to_string(),
            NodeOutcome::Dead => format!("{} (dead)", node.id),
            NodeOutcome::Panicked => format!("{} (panicked)", node.id),
            NodeOutcome::Retired => format!("{} (retired)", node.id),
        };
        table.row(vec![
            id,
            parts.join(" + "),
            format!("{}/{}", node.metrics.msgs_sent, node.metrics.msgs_received),
            node.metrics.retries.to_string(),
            node.metrics.bytes_sent.to_string(),
            node.restarts.to_string(),
            node.last_merge
                .map(|t| format!("{t:?}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_markdown());
    }
    for node in &report.nodes {
        if let Some(err) = &node.error {
            println!("node {} panic: {err}", node.id);
        }
    }
    let totals = report.total_metrics();
    println!("\ncluster totals: {totals}");
    if let Some(audit) = &report.audit {
        println!("\n## audit\n\n{audit}");
    }
    Ok(())
}

fn cmd_robust_average(args: &Args) -> Result<(), String> {
    let n: usize = args.get("n", 300)?;
    let outliers: usize = args.get("outliers", 15)?;
    let delta: f64 = args.get("delta", 12.0)?;
    let rounds: u64 = args.get("rounds", 30)?;
    let seed: u64 = args.get("seed", 42)?;

    let (values, flags) = outlier_mixture(n, outliers, delta, F_MIN, seed);
    let inst = Arc::new(GmInstance::new(2).map_err(|e| e.to_string())?);
    let gossip = GossipConfig {
        seed,
        ..GossipConfig::default()
    };
    let mut sim = RoundSim::new(Topology::complete(n), inst, &values, &gossip);
    sim.run_rounds(rounds);
    let mut push = PushSumSim::new(Topology::complete(n), &values, seed);
    push.run_rounds(rounds);

    let truth = Vector::zeros(2);
    let c = sim.classification_of(sim.live_nodes()[0]);
    let robust = outlier::robust_mean(c).ok_or("empty classification")?;
    println!(
        "{n} sensors, {} density-outliers, delta {delta}",
        flags.iter().filter(|&&o| o).count()
    );
    println!(
        "robust mean:  {} (error {})",
        robust,
        f(robust.distance(&truth))
    );
    let plain_error = push
        .mean_error(&truth)
        .ok_or("push-sum network has no live nodes")?;
    println!(
        "plain mean:   {} (error {})",
        push.estimates()[0],
        f(plain_error)
    );
    Ok(())
}

fn cmd_topologies(args: &Args) -> Result<(), String> {
    let n: usize = args.get("n", 64)?;
    let seed: u64 = args.get("seed", 42)?;
    let cfg = TopoConfig {
        n,
        seed,
        ..TopoConfig::default()
    };
    let mut table = Table::new(vec![
        "topology".into(),
        "diameter".into(),
        "rounds to agree".into(),
    ]);
    for (name, topology) in topo::standard_topologies(cfg.n, cfg.seed) {
        let row = topo::run_topology(name, topology, &cfg).map_err(|e| e.to_string())?;
        table.row(vec![
            row.name.into(),
            row.diameter.to_string(),
            row.rounds_to_converge
                .map(|r| r.to_string())
                .unwrap_or_else(|| "did not converge".into()),
        ]);
    }
    print!("{}", table.to_markdown());
    Ok(())
}

fn main() -> ExitCode {
    let args = Args::parse();
    let command = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    let result = match command {
        "classify" => cmd_classify(&args).map(|()| ExitCode::SUCCESS),
        "robust-average" => cmd_robust_average(&args).map(|()| ExitCode::SUCCESS),
        "topologies" => cmd_topologies(&args).map(|()| ExitCode::SUCCESS),
        "run-cluster" => cmd_run_cluster(&args).map(|()| ExitCode::SUCCESS),
        "trace-report" => cmd_trace_report(&args),
        "causal-report" => cmd_causal_report(&args),
        "byz-report" => cmd_byz_report(&args),
        "dyn-report" => cmd_dyn_report(&args),
        "prof-report" => cmd_prof_report(&args),
        "help" | "--help" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
