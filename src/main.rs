//! `distclass` — command-line driver for gossip-based distributed data
//! classification simulations.
//!
//! ```text
//! distclass classify --instance gm --n 200 --k 3 --topology complete --rounds 40
//! distclass classify --instance centroid --n 100 --k 2 --topology ring --values values.csv
//! distclass robust-average --n 300 --outliers 15 --delta 12
//! distclass topologies --n 64
//! ```
//!
//! Input values come from `--values <file>` (one comma-separated vector per
//! line) or are synthesized from the built-in three-Gaussian workload.
//! Output is a markdown table of node 0's final classification plus run
//! statistics; `--csv` switches to CSV.

use std::process::ExitCode;
use std::sync::Arc;

use distclass::baselines::PushSumSim;
use distclass::core::{outlier, CentroidInstance, GmInstance};
use distclass::experiments::data::{figure2_components, outlier_mixture, sample_mixture, F_MIN};
use distclass::experiments::report::{f, Table};
use distclass::experiments::topo::{self, TopoConfig};
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::linalg::Vector;
use distclass::net::Topology;

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse() -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if iter.peek().map(|v| !v.starts_with("--")).unwrap_or(false) {
                    iter.next()
                } else {
                    None
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }
}

fn usage() -> &'static str {
    "usage: distclass <command> [options]\n\
     \n\
     commands:\n\
       classify        run a classification simulation\n\
         --instance gm|centroid   (default gm)\n\
         --n <nodes>              (default 200)\n\
         --k <collections>        (default 3)\n\
         --topology complete|ring|grid|star|cycle  (default complete)\n\
         --rounds <rounds>        (default 40)\n\
         --seed <seed>            (default 42)\n\
         --values <file>          CSV of input vectors (one per line)\n\
         --csv                    CSV output instead of markdown\n\
       robust-average  outlier-robust mean vs plain aggregation\n\
         --n / --outliers / --delta / --rounds / --seed\n\
       topologies      convergence-speed study across topologies\n\
         --n / --seed\n\
       help            this text"
}

fn build_topology(name: &str, n: usize) -> Result<Topology, String> {
    match name {
        "complete" => Ok(Topology::complete(n)),
        "ring" => Ok(Topology::ring(n)),
        "grid" => {
            let side = (n as f64).sqrt().round() as usize;
            Ok(Topology::grid(side.max(2), side.max(2)))
        }
        "star" => Ok(Topology::star(n)),
        "cycle" => Ok(Topology::directed_cycle(n)),
        other => Err(format!("unknown topology {other}")),
    }
}

fn load_values(path: &str) -> Result<Vec<Vector>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let comps: Result<Vec<f64>, _> = line.split(',').map(|c| c.trim().parse()).collect();
        let comps = comps.map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        out.push(Vector::from(comps));
    }
    if out.is_empty() {
        return Err(format!("{path}: no values"));
    }
    let d = out[0].dim();
    if out.iter().any(|v| v.dim() != d) {
        return Err(format!("{path}: inconsistent dimensions"));
    }
    Ok(out)
}

fn cmd_classify(args: &Args) -> Result<(), String> {
    let n: usize = args.get("n", 200)?;
    let k: usize = args.get("k", 3)?;
    let rounds: u64 = args.get("rounds", 40)?;
    let seed: u64 = args.get("seed", 42)?;
    let topology_name = args.flag("topology").unwrap_or("complete");
    let instance_name = args.flag("instance").unwrap_or("gm");

    let values = match args.flag("values") {
        Some(path) => load_values(path)?,
        None => sample_mixture(n, &figure2_components(), seed).0,
    };
    let n = values.len();
    let topology = build_topology(topology_name, n)?;
    let gossip = GossipConfig {
        seed,
        ..GossipConfig::default()
    };

    let mut table = Table::new(vec!["weight %".into(), "summary".into(), "spread".into()]);
    let (rounds_run, dispersion, messages);
    match instance_name {
        "gm" => {
            let inst = Arc::new(GmInstance::new(k).map_err(|e| e.to_string())?);
            let mut sim = RoundSim::new(topology, inst, &values, &gossip);
            sim.run_rounds(rounds);
            let c = sim.classification_of(sim.live_nodes()[0]);
            let total = c.total_weight();
            for col in c.iter() {
                table.row(vec![
                    format!("{:.1}", col.weight.fraction_of(total) * 100.0),
                    format!("{}", col.summary.mean),
                    f(col.summary.cov.trace()),
                ]);
            }
            rounds_run = sim.round();
            dispersion = distclass::experiments::sampled_dispersion(&sim, 16);
            messages = sim.metrics().messages_sent;
        }
        "centroid" => {
            let inst = Arc::new(CentroidInstance::new(k).map_err(|e| e.to_string())?);
            let mut sim = RoundSim::new(topology, inst, &values, &gossip);
            sim.run_rounds(rounds);
            let c = sim.classification_of(sim.live_nodes()[0]);
            let total = c.total_weight();
            for col in c.iter() {
                table.row(vec![
                    format!("{:.1}", col.weight.fraction_of(total) * 100.0),
                    format!("{}", col.summary),
                    "-".into(),
                ]);
            }
            rounds_run = sim.round();
            dispersion = distclass::experiments::sampled_dispersion(&sim, 16);
            messages = sim.metrics().messages_sent;
        }
        other => return Err(format!("unknown instance {other}")),
    }

    println!(
        "# classification after {rounds_run} rounds ({instance_name}, k={k}, {topology_name}, n={n})\n"
    );
    if args.has("csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_markdown());
    }
    println!(
        "\nmessages: {messages}; dispersion (sampled): {}",
        f(dispersion)
    );
    Ok(())
}

fn cmd_robust_average(args: &Args) -> Result<(), String> {
    let n: usize = args.get("n", 300)?;
    let outliers: usize = args.get("outliers", 15)?;
    let delta: f64 = args.get("delta", 12.0)?;
    let rounds: u64 = args.get("rounds", 30)?;
    let seed: u64 = args.get("seed", 42)?;

    let (values, flags) = outlier_mixture(n, outliers, delta, F_MIN, seed);
    let inst = Arc::new(GmInstance::new(2).map_err(|e| e.to_string())?);
    let gossip = GossipConfig {
        seed,
        ..GossipConfig::default()
    };
    let mut sim = RoundSim::new(Topology::complete(n), inst, &values, &gossip);
    sim.run_rounds(rounds);
    let mut push = PushSumSim::new(Topology::complete(n), &values, seed);
    push.run_rounds(rounds);

    let truth = Vector::zeros(2);
    let c = sim.classification_of(sim.live_nodes()[0]);
    let robust = outlier::robust_mean(c).ok_or("empty classification")?;
    println!(
        "{n} sensors, {} density-outliers, delta {delta}",
        flags.iter().filter(|&&o| o).count()
    );
    println!(
        "robust mean:  {} (error {})",
        robust,
        f(robust.distance(&truth))
    );
    println!(
        "plain mean:   {} (error {})",
        push.estimates()[0],
        f(push.mean_error(&truth))
    );
    Ok(())
}

fn cmd_topologies(args: &Args) -> Result<(), String> {
    let n: usize = args.get("n", 64)?;
    let seed: u64 = args.get("seed", 42)?;
    let cfg = TopoConfig {
        n,
        seed,
        ..TopoConfig::default()
    };
    let mut table = Table::new(vec![
        "topology".into(),
        "diameter".into(),
        "rounds to agree".into(),
    ]);
    for (name, topology) in topo::standard_topologies(cfg.n, cfg.seed) {
        let row = topo::run_topology(name, topology, &cfg).map_err(|e| e.to_string())?;
        table.row(vec![
            row.name.into(),
            row.diameter.to_string(),
            row.rounds_to_converge
                .map(|r| r.to_string())
                .unwrap_or_else(|| "did not converge".into()),
        ]);
    }
    print!("{}", table.to_markdown());
    Ok(())
}

fn main() -> ExitCode {
    let args = Args::parse();
    let command = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    let result = match command {
        "classify" => cmd_classify(&args),
        "robust-average" => cmd_robust_average(&args),
        "topologies" => cmd_topologies(&args),
        "help" | "--help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
