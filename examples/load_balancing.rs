//! The introduction's grid-computing scenario: machines classify their
//! loads into "lightly loaded" and "heavily loaded" collections, then each
//! machine decides whether to stop serving new requests by checking which
//! collection its own load is closer to.
//!
//! The punchline from the paper: a machine at 60 % load should stop taking
//! requests when the collections sit at ~10 % and ~90 %, but keep serving
//! when they sit at ~50 % and ~80 % — the decision depends on the global
//! classification, not on any fixed threshold.
//!
//! Run with: `cargo run --example load_balancing`

use std::sync::Arc;

use distclass::core::{CentroidInstance, Instance};
use distclass::experiments::data::bimodal_load;
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::linalg::Vector;
use distclass::net::Topology;

fn classify_loads(
    scenario: &str,
    lo: f64,
    hi: f64,
    probe: f64,
) -> Result<(), Box<dyn std::error::Error>> {
    let n = 100;
    let mut values = bimodal_load(n - 1, lo, hi, 0.03, 17);
    // The machine we care about runs at `probe` load.
    values.push(Vector::from([probe]));

    let instance = Arc::new(CentroidInstance::new(2)?);
    let mut sim = RoundSim::new(
        Topology::complete(n),
        Arc::clone(&instance),
        &values,
        &GossipConfig::default(),
    );
    sim.run_until_stable(200, 5, 1e-3);

    // The probe machine reads its own classification (node n-1).
    let c = sim.classification_of(n - 1);
    let probe_v = Vector::from([probe]);
    let nearest = c
        .iter()
        .min_by(|a, b| {
            let da = instance.summary_distance(&a.summary, &probe_v);
            let db = instance.summary_distance(&b.summary, &probe_v);
            da.partial_cmp(&db).expect("finite distances")
        })
        .expect("non-empty classification");
    let heavy_mean = c
        .iter()
        .map(|col| col.summary[0])
        .fold(f64::NEG_INFINITY, f64::max);
    let is_heavy = (nearest.summary[0] - heavy_mean).abs() < 1e-9;

    let mut centroids: Vec<f64> = c.iter().map(|col| col.summary[0] * 100.0).collect();
    centroids.sort_by(|a, b| a.partial_cmp(b).expect("finite loads"));
    println!(
        "{scenario}: collections at {:.0} % and {:.0} % load → machine at {:.0} % {}",
        centroids[0],
        centroids[1],
        probe * 100.0,
        if is_heavy {
            "joins the HEAVY collection: stop serving new requests"
        } else {
            "joins the light collection: keep serving"
        }
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Same machine (60 % load), two different cluster states.
    classify_loads("cluster A", 0.10, 0.90, 0.60)?;
    classify_loads("cluster B", 0.50, 0.80, 0.60)?;
    Ok(())
}
