//! Robust average with outlier removal (the paper's §5.3.2 application):
//! most sensors read values around the true mean, a few are broken. The
//! GM classifier with k = 2 separates the good values from the outliers
//! and estimates the mean from the good collection only; plain push-sum
//! aggregation is pulled away by the outliers.
//!
//! Run with: `cargo run --release --example robust_average`

use std::sync::Arc;

use distclass::baselines::PushSumSim;
use distclass::core::{outlier, GmInstance};
use distclass::experiments::data::{outlier_mixture, F_MIN};
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::linalg::Vector;
use distclass::net::Topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 300;
    let broken = 15;
    let delta = 12.0;
    // 285 good readings ~ N(0, I); 15 broken sensors report ~ (0, 12).
    let (values, flags) = outlier_mixture(n, broken, delta, F_MIN, 3);
    println!(
        "{n} sensors, {} behave as outliers (density < {F_MIN})",
        flags.iter().filter(|&&f| f).count()
    );

    // Robust path: classify into 2 collections, take the heavy one's mean.
    let instance = Arc::new(GmInstance::new(2)?);
    let mut robust = RoundSim::new(
        Topology::complete(n),
        instance,
        &values,
        &GossipConfig::default(),
    );
    robust.run_rounds(30);

    // Regular path: push-sum average of everything.
    let mut regular = PushSumSim::new(Topology::complete(n), &values, 3);
    regular.run_rounds(30);

    let truth = Vector::zeros(2);
    let c = robust.classification_of(0);
    let robust_mean = outlier::robust_mean(c).expect("non-empty classification");
    let regular_mean = &regular.estimates()[0];

    println!("true mean:          (0.000, 0.000)");
    println!(
        "robust estimate:    ({:.3}, {:.3})   error {:.3}",
        robust_mean[0],
        robust_mean[1],
        robust_mean.distance(&truth)
    );
    println!(
        "regular estimate:   ({:.3}, {:.3})   error {:.3}",
        regular_mean[0],
        regular_mean[1],
        regular_mean.distance(&truth)
    );
    println!(
        "\nthe regular average is dragged up by the broken sensors (~{:.2} expected);",
        delta * broken as f64 / n as f64
    );
    println!("the classifier quarantines them in their own collection instead.");
    Ok(())
}
