//! Implementing your own classification instance.
//!
//! The paper's algorithm is generic: any summary domain works as long as
//! the application supplies `valToSummary`, `mergeSet`, `partition` and a
//! distance. This example defines a **bounding-interval instance** — each
//! collection is summarized by the (min, max) interval of its 1-D values —
//! entirely outside the library, then runs it over a gossip network.
//!
//! Interval summaries are a classic cheap aggregate for sensor networks:
//! "which temperature bands exist, and how much of the network sits in
//! each band?"
//!
//! Run with: `cargo run --example custom_instance`

use std::sync::Arc;

use distclass::core::{greedy_partition, Classification, Instance};
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::net::Topology;

/// The summary: a closed interval `[lo, hi]` bounding the collection.
#[derive(Debug, Clone, PartialEq)]
struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    fn width(&self) -> f64 {
        self.hi - self.lo
    }

    fn center(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// The instance: intervals merge by union-hull; merging decisions keep the
/// hulls compact (distance = how much the union would widen beyond the
/// parts — a linkage criterion, not a metric, which is fine: the paper
/// leaves the criterion to the application).
#[derive(Debug, Clone)]
struct IntervalInstance {
    k: usize,
}

impl Instance for IntervalInstance {
    type Value = f64;
    type Summary = Interval;

    fn k(&self) -> usize {
        self.k
    }

    fn val_to_summary(&self, val: &f64) -> Interval {
        Interval { lo: *val, hi: *val }
    }

    fn merge_set(&self, parts: &[(&Interval, f64)]) -> Interval {
        // Weights do not matter for a hull — R3 (scale invariance) is
        // trivially satisfied.
        let lo = parts
            .iter()
            .map(|(s, _)| s.lo)
            .fold(f64::INFINITY, f64::min);
        let hi = parts
            .iter()
            .map(|(s, _)| s.hi)
            .fold(f64::NEG_INFINITY, f64::max);
        Interval { lo, hi }
    }

    fn partition(&self, big: &Classification<Interval>) -> Vec<Vec<usize>> {
        greedy_partition(self, big)
    }

    fn summary_distance(&self, a: &Interval, b: &Interval) -> f64 {
        // Widening cost of the union over the widest part: zero for
        // overlapping intervals, gap size for disjoint ones.
        let union_width = a.hi.max(b.hi) - a.lo.min(b.lo);
        (union_width - a.width().max(b.width())).max(0.0)
    }
}

fn main() {
    // 60 sensors in three temperature bands.
    let n = 60;
    let values: Vec<f64> = (0..n)
        .map(|i| match i % 3 {
            0 => 18.0 + 0.05 * i as f64, // band A: ~18–21 °C
            1 => 45.0 + 0.05 * i as f64, // band B: ~45–48 °C
            _ => 80.0 + 0.05 * i as f64, // band C: ~80–83 °C
        })
        .collect();

    let instance = Arc::new(IntervalInstance { k: 3 });
    let mut sim = RoundSim::new(
        Topology::complete(n),
        Arc::clone(&instance),
        &values,
        &GossipConfig::default(),
    );
    let rounds = sim.run_until_stable(200, 5, 1e-6);
    println!("stabilized after {rounds} rounds\n");

    let c = sim.classification_of(0);
    let total = c.total_weight();
    let mut rows: Vec<_> = c.iter().collect();
    rows.sort_by(|a, b| {
        a.summary
            .center()
            .partial_cmp(&b.summary.center())
            .expect("finite centers")
    });
    println!("temperature bands seen by node 0:");
    for col in rows {
        println!(
            "  [{:>6.2}, {:>6.2}] °C — {:>4.1} % of the network",
            col.summary.lo,
            col.summary.hi,
            col.weight.fraction_of(total) * 100.0
        );
    }
    println!(
        "\nagreement across nodes (dispersion): {:.6}",
        sim.dispersion()
    );
}
