//! A real cluster over UDP loopback.
//!
//! Twelve peers — each an OS thread with its own UDP socket — gossip
//! 2-D sensor readings from two sites until every node holds the same
//! two-collection classification. Run with:
//!
//! ```text
//! cargo run --release --example udp_cluster
//! ```
//!
//! The harness quiesces and drains the network before snapshotting, so the
//! final reports conserve the total weight to the grain, which this
//! example asserts along with cluster-wide agreement.

use std::sync::Arc;
use std::time::Duration;

use distclass::core::CentroidInstance;
use distclass::linalg::Vector;
use distclass::net::Topology;
use distclass::runtime::{run_udp_cluster, ClusterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 12;

    // Two sensor sites with exact readings: even nodes at (0,0), odd nodes
    // at (10,10). Exact values keep the converged centroids exactly on the
    // sites, so every node prints the identical classification.
    let values: Vec<Vector> = (0..N)
        .map(|i| {
            let x = if i % 2 == 0 { 0.0 } else { 10.0 };
            Vector::from(vec![x, x])
        })
        .collect();

    let inst = Arc::new(CentroidInstance::new(2)?);
    let config = ClusterConfig {
        tick: Duration::from_millis(2),
        tol: 1e-9,
        stable_window: Duration::from_millis(150),
        max_wall: Duration::from_secs(20),
        seed: 7,
        ..ClusterConfig::default()
    };

    println!("spawning {N} peers on UDP loopback (complete topology)...");
    let report = run_udp_cluster(&Topology::complete(N), Arc::clone(&inst), &values, &config)?;

    println!(
        "converged: {} ({:?}); drained: {}; wall: {:?}; dispersion: {:.3e}",
        report.converged,
        report.converged_after.unwrap_or_default(),
        report.drained,
        report.wall,
        report.final_dispersion,
    );

    let mut rendered: Vec<String> = Vec::with_capacity(N);
    for node in &report.nodes {
        let total = node.classification.total_weight();
        let mut parts: Vec<(String, f64)> = node
            .classification
            .iter()
            .map(|c| {
                (
                    format!("{}", c.summary),
                    c.weight.fraction_of(total) * 100.0,
                )
            })
            .collect();
        parts.sort_by(|a, b| a.0.cmp(&b.0));
        let summaries: Vec<&str> = parts.iter().map(|(s, _)| s.as_str()).collect();
        let weights: Vec<String> = parts.iter().map(|(_, w)| format!("{w:.0}%")).collect();
        println!(
            "node {:>2}: {:<28} weights [{}]  {}",
            node.id,
            summaries.join(" + "),
            weights.join(", "),
            node.metrics,
        );
        rendered.push(summaries.join(" + "));
    }

    // Every node prints the identical classification…
    assert!(
        rendered.windows(2).all(|w| w[0] == w[1]),
        "nodes disagree: {rendered:?}"
    );
    // …the cluster drained (no weight left in flight)…
    assert!(report.drained, "cluster failed to drain");
    // …and the total weight is conserved to the grain.
    let expected = N as u64 * config.quantum.grains_per_unit();
    assert_eq!(report.total_grains(), expected, "grains not conserved");

    let totals = report.total_metrics();
    println!(
        "grain conservation holds: {} grains == {N} x {}",
        report.total_grains(),
        config.quantum.grains_per_unit(),
    );
    println!("cluster totals: {totals}");
    Ok(())
}
