//! Distribution estimation as a *third* instantiation of the generic
//! algorithm: collections summarized by fixed-range histograms (the
//! related-work approach of Haridasan & van Renesse, realized inside the
//! paper's framework). With k = 1 every node converges to the histogram of
//! the complete input multiset.
//!
//! Run with: `cargo run --example histogram_estimation`

use std::sync::Arc;

use distclass::baselines::HistogramInstance;
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::net::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 100;
    // Skewed 1-D readings: a peak near 2 plus a uniform background.
    let mut rng = StdRng::seed_from_u64(23);
    let values: Vec<f64> = (0..n)
        .map(|_| {
            if rng.gen::<f64>() < 0.7 {
                2.0 + rng.gen::<f64>()
            } else {
                rng.gen::<f64>() * 10.0
            }
        })
        .collect();

    let instance = Arc::new(HistogramInstance::new(1, 0.0, 10.0, 10)?);
    let mut sim = RoundSim::new(
        Topology::grid(10, 10),
        Arc::clone(&instance),
        &values,
        &GossipConfig::default(),
    );
    let rounds = sim.run_until_stable(500, 5, 1e-3);
    println!("stabilized after {rounds} rounds on a 10x10 grid\n");

    // The exact histogram, for comparison.
    let mut exact = [0.0_f64; 10];
    for v in &values {
        exact[instance.bin_of(*v)] += 1.0 / n as f64;
    }

    let c = sim.classification_of(55); // an arbitrary node deep in the grid
    let estimated = &c.collection(0).summary;
    println!("bin   exact  estimated");
    for (i, (e, m)) in exact.iter().zip(estimated.masses().iter()).enumerate() {
        let bar = "#".repeat((m * 60.0).round() as usize);
        println!("[{i}]   {e:.3}  {m:.3}  {bar}");
    }
    let l1: f64 = exact
        .iter()
        .zip(estimated.masses().iter())
        .map(|(e, m)| (e - m).abs())
        .sum();
    println!("\nL1 error of node 55's estimate: {l1:.4}");
    Ok(())
}
