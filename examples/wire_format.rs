//! The wire format in action: encode a node's live classification, inspect
//! its size (a function of k and d only — never of the network size), ship
//! it, decode it, and verify the receiver sees the identical
//! classification.
//!
//! Run with: `cargo run --example wire_format`

use std::sync::Arc;

use distclass::core::GmInstance;
use distclass::experiments::data::{figure2_components, sample_mixture};
use distclass::gossip::{codec, GossipConfig, RoundSim};
use distclass::net::Topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a real classification by running the protocol briefly at two
    // very different network sizes.
    for n in [50usize, 400] {
        let (values, _) = sample_mixture(n, &figure2_components(), 9);
        let inst = Arc::new(GmInstance::new(4)?);
        let mut sim = RoundSim::new(
            Topology::complete(n),
            inst,
            &values,
            &GossipConfig::default(),
        );
        sim.run_rounds(15);

        let classification = sim.classification_of(0);
        let bytes = codec::encode_gm(classification)?;
        println!(
            "n = {n:>4}: {} collections → {} bytes on the wire (predicted {})",
            classification.len(),
            bytes.len(),
            codec::gm_message_size(classification.len(), 2),
        );

        // Round-trip: the receiving node reconstructs it exactly.
        let decoded = codec::decode_gm(&bytes)?;
        assert_eq!(&decoded, classification);
    }

    println!(
        "\nSame k and d ⇒ same message size — the paper's scalability claim:\n\
         message cost depends on the data model, not on the network."
    );
    for (k, d) in [(2, 2), (7, 2), (7, 8)] {
        println!(
            "  k = {k}, d = {d}: {:>5} bytes per message",
            codec::gm_message_size(k, d)
        );
    }
    Ok(())
}
