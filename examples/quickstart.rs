//! Quickstart: 20 sensors, two clusters of readings, centroid
//! classification over a complete gossip network.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use distclass::core::CentroidInstance;
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::linalg::Vector;
use distclass::net::Topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Each node holds one reading: half around 20 °C, half around 80 °C.
    let values: Vec<Vector> = (0..20)
        .map(|i| {
            let base = if i % 2 == 0 { 20.0 } else { 80.0 };
            Vector::from([base + (i as f64) * 0.1])
        })
        .collect();

    // Classify into at most k = 2 collections, summarized by centroids.
    let instance = Arc::new(CentroidInstance::new(2)?);
    let mut sim = RoundSim::new(
        Topology::complete(20),
        instance,
        &values,
        &GossipConfig::default(),
    );

    // Gossip until all nodes agree.
    let rounds = sim.run_until_stable(200, 5, 1e-3);
    println!("stabilized after {rounds} rounds");

    // Every node now holds the same classification of ALL readings,
    // although no node ever saw more than a summary.
    let c = sim.classification_of(0);
    let total = c.total_weight();
    for col in c.iter() {
        println!(
            "cluster at {:.1} °C holding {:.0} % of the readings",
            col.summary[0],
            col.weight.fraction_of(total) * 100.0
        );
    }
    println!("agreement (dispersion): {:.6}", sim.dispersion());
    Ok(())
}
