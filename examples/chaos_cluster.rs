//! Chaos engineering for the gossip cluster: scripted faults, crash
//! recovery, and a grain-conservation audit.
//!
//! Twelve peers gossip 2-D readings while a deterministic [`FaultPlan`]
//! works against them: the network splits in half for 300 ms and heals,
//! two peers crash mid-run and are respawned from their checkpoints, a
//! third crashes permanently, and every frame risks duplication and
//! reordering. Run with:
//!
//! ```text
//! cargo run --release --example chaos_cluster
//! ```
//!
//! The cluster converges anyway, and the post-run audit proves the
//! outcome is not luck: every grain is either in a surviving node's
//! final classification or explicitly declared lost with the permanent
//! crash — `final = initial + gains − losses`, exactly.

use std::sync::Arc;
use std::time::Duration;

use distclass::core::CentroidInstance;
use distclass::linalg::Vector;
use distclass::net::Topology;
use distclass::runtime::{run_chaos_channel_cluster, ClusterConfig, FaultPlan, NodeOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 12;

    let values: Vec<Vector> = (0..N)
        .map(|i| {
            let x = if i % 2 == 0 { 0.0 } else { 10.0 };
            Vector::from(vec![x, x])
        })
        .collect();

    // The full fault menu, all deterministic in the plan seed:
    // - the low half of the cluster is cut off for 300 ms, then healed;
    // - peers 2 and 7 crash and come back 150 ms later from checkpoints;
    // - peer 9 crashes for good at 500 ms (its grains become a declared
    //   loss the audit must account for);
    // - 5% of frames are duplicated, 10% are held back to arrive late.
    let plan = FaultPlan::new(99)
        .partition(
            Duration::from_millis(150),
            Duration::from_millis(450),
            (0..N / 2).collect(),
        )
        .crash_restart(Duration::from_millis(250), 2, Duration::from_millis(150))
        .crash_restart(Duration::from_millis(350), 7, Duration::from_millis(150))
        .crash(Duration::from_millis(500), 9)
        .duplicate(0.05)
        .reorder(0.10);
    println!(
        "fault plan digest {:016x} (same seed => same schedule, byte for byte)",
        plan.digest()
    );

    let inst = Arc::new(CentroidInstance::new(2)?);
    let config = ClusterConfig {
        tick: Duration::from_millis(1),
        tol: 1e-9,
        stable_window: Duration::from_millis(150),
        max_wall: Duration::from_secs(25),
        seed: 7,
        audit: true,
        ..ClusterConfig::default()
    };

    println!("spawning {N} peers (complete topology) into the storm...");
    let report = run_chaos_channel_cluster(&Topology::complete(N), inst, &values, &plan, &config);

    println!(
        "converged: {} ({:?}); drained: {}; wall: {:?}; dispersion: {:.3e}",
        report.converged,
        report.converged_after.unwrap_or_default(),
        report.drained,
        report.wall,
        report.final_dispersion,
    );
    for node in &report.nodes {
        let outcome = match node.outcome {
            NodeOutcome::Completed => "ok".to_string(),
            NodeOutcome::Dead => "dead".to_string(),
            NodeOutcome::Panicked => "panicked".to_string(),
            NodeOutcome::Retired => "retired".to_string(),
        };
        println!(
            "node {:>2}: {:<8} restarts={} undelivered={} {}",
            node.id, outcome, node.restarts, node.undelivered, node.metrics,
        );
    }

    let audit = report.audit.as_ref().expect("audit was requested");
    println!("\n{audit}");

    // The two respawned peers completed; the permanent casualty did not.
    assert_eq!(report.nodes[2].restarts, 1, "peer 2 should have respawned");
    assert_eq!(report.nodes[7].restarts, 1, "peer 7 should have respawned");
    assert_eq!(report.nodes[9].outcome, NodeOutcome::Dead);
    assert!(report.converged, "cluster failed to converge");
    // And the books balance: finals equal the initial grains plus every
    // declared gain minus every declared loss, to the grain.
    assert!(audit.ok(), "audit failed:\n{audit}");
    println!("\nall {N} peers audited; the books balance.");
    Ok(())
}
