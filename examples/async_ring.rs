//! Convergence under full asynchrony — the setting of the paper's
//! Theorem 1: a sparse ring topology, exponentially distributed message
//! delays (some messages take 10× the mean), jittered node clocks. The
//! algorithm still drives every node to the same classification, and the
//! quantized weights account for every grain.
//!
//! Run with: `cargo run --release --example async_ring`

use std::sync::Arc;

use distclass::core::{CentroidInstance, Quantum};
use distclass::gossip::{AsyncSim, GossipConfig};
use distclass::linalg::Vector;
use distclass::net::{DelayModel, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 24;
    // Two clusters of readings around 0 and 5.
    let values: Vec<Vector> = (0..n)
        .map(|i| Vector::from([if i % 2 == 0 { 0.0 } else { 5.0 } + 0.01 * i as f64]))
        .collect();

    let quantum = Quantum::new(1 << 16);
    let config = GossipConfig {
        quantum,
        ..GossipConfig::default()
    };
    let mut sim = AsyncSim::new(
        Topology::ring(n),
        Arc::new(CentroidInstance::new(2)?),
        &values,
        &config,
        DelayModel::Exponential { mean: 2.0 },
    );

    for checkpoint in [50.0, 150.0, 400.0] {
        sim.run_until(checkpoint);
        println!(
            "t = {checkpoint:>5}: dispersion {:.4}, {} messages delivered, {} in flight",
            sim.dispersion(),
            sim.metrics().messages_delivered,
            sim.metrics().in_flight()
        );
    }

    // Let the last messages land, then audit conservation: every grain of
    // the original n units of weight is still in the system.
    sim.drain_in_flight();
    let grains = sim.total_node_weight().grains();
    println!(
        "\nafter draining: {} grains held by nodes, expected {} — {}",
        grains,
        n as u64 * quantum.grains_per_unit(),
        if grains == n as u64 * quantum.grains_per_unit() {
            "conserved exactly"
        } else {
            "weight leaked!"
        }
    );

    let c = sim.classification_of(0);
    let total = c.total_weight();
    println!("\nnode 0's classification:");
    for col in c.iter() {
        println!(
            "  centroid {:>6.3} holding {:>4.1} % of the weight",
            col.summary[0],
            col.weight.fraction_of(total) * 100.0
        );
    }
    Ok(())
}
