//! The paper's Figure 2 scenario: sensors along a fence by the woods
//! record (position, temperature); the right side is close to a fire.
//! Nodes communicate over a *random geometric* network — the classic
//! sensor-network deployment — and jointly build a Gaussian Mixture
//! describing all readings, from which each node can spot the hot region.
//!
//! Run with: `cargo run --release --example fence_fire_monitoring`

use std::sync::Arc;

use distclass::core::GmInstance;
use distclass::experiments::data::{figure2_components, sample_mixture};
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::net::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 200;
    // Deploy sensors uniformly at random; connect those within radio range.
    let mut rng = StdRng::seed_from_u64(7);
    let (topology, positions) = Topology::random_geometric(n, 0.22, &mut rng)?;
    println!(
        "deployed {n} sensors, {} links, diameter {} hops",
        topology.edge_count() / 2,
        topology.diameter()
    );
    let _ = positions; // radio positions; readings below are the workload

    // Readings drawn from the paper's three-Gaussian distribution:
    // (position on fence, temperature).
    let (values, _) = sample_mixture(n, &figure2_components(), 7);

    let instance = Arc::new(GmInstance::new(5)?);
    let mut sim = RoundSim::new(topology, instance, &values, &GossipConfig::default());
    let rounds = sim.run_until_stable(400, 5, 5e-2);
    println!("stabilized after {rounds} rounds\n");

    // Every sensor now knows the global mixture; the component with the
    // highest temperature mean is the fire.
    let c = sim.classification_of(0);
    let total = c.total_weight();
    let mut hottest: Option<(f64, f64)> = None;
    println!("collections at node 0:");
    for col in c.iter() {
        let pos = col.summary.mean[0];
        let temp = col.summary.mean[1];
        let w = col.weight.fraction_of(total);
        println!(
            "  {:>5.1} % of readings near position {pos:>6.2}, temperature {temp:>6.2}",
            w * 100.0
        );
        if w > 0.1 && hottest.map(|(_, t)| temp > t).unwrap_or(true) {
            hottest = Some((pos, temp));
        }
    }
    let (pos, temp) = hottest.expect("non-empty classification");
    println!("\nfire detected near fence position {pos:.1} (temperature {temp:.1})");
    Ok(())
}
