//! Quality comparisons against centralized baselines: the distributed
//! algorithms never see the whole data set, yet their results should be
//! close to what the classical centralized algorithms compute.

use std::sync::Arc;

use distclass::baselines::{em_central, kmeans, PushSumSim};
use distclass::core::{CentroidInstance, EmConfig, GaussianSummary, GmInstance};
use distclass::experiments::data::{figure2_components, sample_mixture};
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::linalg::Vector;
use distclass::net::Topology;

#[test]
fn distributed_centroids_match_lloyd() {
    // Two tight blobs; both algorithms must find (≈0) and (≈7).
    let n = 40;
    let values: Vec<Vector> = (0..n)
        .map(|i| Vector::from([if i % 2 == 0 { 0.0 } else { 7.0 } + 0.02 * (i / 2) as f64]))
        .collect();

    let central = kmeans::lloyd(&values, 2, 100).expect("valid k-means input");
    let mut central_means: Vec<f64> = central.centroids.iter().map(|c| c[0]).collect();
    central_means.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(
        Topology::complete(n),
        inst,
        &values,
        &GossipConfig::default(),
    );
    sim.run_rounds(60);
    let c = sim.classification_of(0);
    let mut dist_means: Vec<f64> = c.iter().map(|col| col.summary[0]).collect();
    dist_means.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    assert_eq!(dist_means.len(), central_means.len());
    for (d, c) in dist_means.iter().zip(central_means.iter()) {
        assert!((d - c).abs() < 0.2, "distributed {d} vs central {c}");
    }
}

#[test]
fn distributed_gm_likelihood_close_to_centralized_em() {
    let (values, _) = sample_mixture(300, &figure2_components(), 9);

    let inst = Arc::new(GmInstance::new(5).expect("k = 5 is valid"));
    let mut sim = RoundSim::new(
        Topology::complete(300),
        inst,
        &values,
        &GossipConfig::default(),
    );
    sim.run_rounds(50);
    let c = sim.classification_of(0);
    let total = c.total_weight();
    let dist_model: Vec<(GaussianSummary, f64)> = c
        .iter()
        .map(|col| (col.summary.clone(), col.weight.fraction_of(total)))
        .collect();

    let central = em_central::fit(&values, 5, &EmConfig::default()).expect("valid EM input");

    let ll_dist = em_central::avg_log_likelihood(&values, &dist_model, 1e-6).expect("valid model");
    let ll_central =
        em_central::avg_log_likelihood(&values, &central.model, 1e-6).expect("valid model");

    // Both are heuristics; distributed should be within 10 % of central.
    assert!(
        ll_dist > ll_central - 0.1 * ll_central.abs(),
        "distributed {ll_dist} vs centralized {ll_central}"
    );
}

#[test]
fn push_sum_matches_exact_mean() {
    let n = 50;
    let values: Vec<Vector> = (0..n)
        .map(|i| Vector::from([i as f64, (i * i % 13) as f64]))
        .collect();
    let mut exact = Vector::zeros(2);
    for v in &values {
        exact.axpy(1.0 / n as f64, v);
    }
    let mut sim = PushSumSim::new(Topology::complete(n), &values, 2);
    sim.run_rounds(80);
    let err = sim.mean_error(&exact).expect("no crash model, nodes live");
    assert!(err < 1e-9, "err {err}");
}

#[test]
fn k_means_inertia_not_much_worse_distributed() {
    // Compare clustering cost (inertia) of the distributed centroids
    // against Lloyd's on a 3-cluster workload.
    let n = 60;
    let values: Vec<Vector> = (0..n)
        .map(|i| {
            let c = (i % 3) as f64 * 10.0;
            Vector::from([c + 0.05 * (i / 3) as f64])
        })
        .collect();

    let central = kmeans::lloyd(&values, 3, 100).expect("valid k-means input");

    let inst = Arc::new(CentroidInstance::new(3).expect("k = 3 is valid"));
    let mut sim = RoundSim::new(
        Topology::complete(n),
        inst,
        &values,
        &GossipConfig::default(),
    );
    sim.run_rounds(80);
    let centroids: Vec<Vector> = sim
        .classification_of(0)
        .iter()
        .map(|c| c.summary.clone())
        .collect();
    let inertia: f64 = values
        .iter()
        .map(|v| {
            centroids
                .iter()
                .map(|c| {
                    let d = v.distance(c);
                    d * d
                })
                .fold(f64::INFINITY, f64::min)
        })
        .sum();

    assert!(
        inertia <= central.inertia * 3.0 + 1.0,
        "distributed inertia {inertia} vs central {}",
        central.inertia
    );
}
