//! Property tests for the causal layer: Lamport clocks must be strictly
//! monotone along every causal edge — per-node program order (including
//! across crash–restart incarnation bumps) and every split→merge hop —
//! under a chaos sweep of duplication, reordering, and crash–restart.
//!
//! Each scenario sweeps a seed matrix; set `DISTCLASS_CHAOS_SEEDS` to a
//! comma-separated list to override the default eight seeds.

use std::sync::Arc;
use std::time::Duration;

use distclass::core::CentroidInstance;
use distclass::linalg::Vector;
use distclass::net::{NodeId, Topology};
use distclass::obs::{AnalyzeOptions, CausalReport, RingSink, TraceEvent, Tracer};
use distclass::runtime::{run_chaos_channel_cluster, ClusterConfig, FaultPlan};

fn seeds() -> Vec<u64> {
    match std::env::var("DISTCLASS_CHAOS_SEEDS") {
        Ok(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("DISTCLASS_CHAOS_SEEDS: bad seed"))
            .collect(),
        Err(_) => (1..=8).collect(),
    }
}

fn two_site_values(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| {
            let x = if i % 2 == 0 { 0.0 } else { 10.0 };
            Vector::from(vec![x, x])
        })
        .collect()
}

/// Runs an 8-peer chaos cluster (duplication + reordering + one scripted
/// crash–restart) with an in-memory trace, returning the captured events.
fn chaos_trace(seed: u64) -> Vec<TraceEvent> {
    const N: usize = 8;
    let victim = (seed % N as u64) as NodeId;
    let plan = FaultPlan::new(seed)
        .duplicate(0.05)
        .reorder(0.10)
        .crash_restart(
            Duration::from_millis(150),
            victim,
            Duration::from_millis(100),
        );
    let ring = Arc::new(RingSink::new(1 << 20));
    let config = ClusterConfig {
        tick: Duration::from_millis(1),
        tol: 1e-9,
        stable_window: Duration::from_millis(100),
        max_wall: Duration::from_secs(30),
        drain_wall: Duration::from_secs(15),
        seed,
        audit: true,
        tracer: Tracer::new(Arc::clone(&ring) as _),
        ..ClusterConfig::default()
    };
    let inst = Arc::new(CentroidInstance::new(2).expect("k >= 1"));
    let report = run_chaos_channel_cluster(
        &Topology::complete(N),
        inst,
        &two_site_values(N),
        &plan,
        &config,
    );
    assert!(report.converged, "seed {seed}: cluster did not converge");
    assert_eq!(
        report.nodes[victim].restarts, 1,
        "seed {seed}: node {victim} was not respawned, so the sweep never \
         crossed an incarnation boundary"
    );
    ring.events()
}

/// The core invariant: along each node's own event stream the Lamport
/// clock strictly increases — including across a crash–restart, where the
/// respawned incarnation must resume *above* every clock value any of its
/// predecessors ever emitted (no rewind).
#[test]
fn lamport_clocks_never_rewind_per_node_across_seeds() {
    for seed in seeds() {
        let events = chaos_trace(seed);
        let mut last: Vec<Option<(u64, u16)>> = vec![None; 8];
        let mut incarnations_seen = 0u32;
        for ev in &events {
            let (node, lamport, inc) = match ev {
                TraceEvent::GrainDelta {
                    node,
                    lamport: Some(l),
                    incarnation,
                    ..
                } => (*node, *l, *incarnation),
                _ => continue,
            };
            if let Some((prev, prev_inc)) = last[node] {
                assert!(
                    lamport > prev,
                    "seed {seed}: node {node} clock rewound {prev} -> {lamport} \
                     (incarnation {prev_inc} -> {inc})"
                );
                if inc != prev_inc {
                    incarnations_seen += 1;
                }
            }
            last[node] = Some((lamport, inc));
        }
        assert!(
            incarnations_seen > 0,
            "seed {seed}: no incarnation boundary was observed in the trace"
        );
    }
}

/// The cross-edge half of the invariant, checked by the offline analyzer:
/// every split→merge edge must go strictly uphill in Lamport time, the
/// happens-before DAG must be acyclic, every merge must find its minting
/// split, and grain provenance must reconcile exactly — on every seed.
#[test]
fn causal_report_is_clean_under_chaos_across_seeds() {
    for seed in seeds() {
        let events = chaos_trace(seed);
        let report = CausalReport::from_events(&events, &AnalyzeOptions::default());
        assert!(
            report.acyclic,
            "seed {seed}: happens-before DAG has a cycle\n{report}"
        );
        assert_eq!(
            report.lamport_violations, 0,
            "seed {seed}: a causal edge went downhill in Lamport time\n{report}"
        );
        assert_eq!(
            report.unmatched_parents, 0,
            "seed {seed}: a merge/return referenced a span never minted\n{report}"
        );
        assert!(
            report.provenance_exact,
            "seed {seed}: grain provenance drifted\n{report}"
        );
        assert!(report.clean(), "seed {seed}: anomalies:\n{report}");
        assert!(
            report.clock_skew < 1_000_000,
            "seed {seed}: absurd clock skew {}",
            report.clock_skew
        );
    }
}
