//! The trace layer's accounting must agree with the grain-conservation
//! auditor: replaying a run's `GrainDelta`/`GrainsVoided` events
//! reconciles every peer's final holdings to the grain, both in-process
//! (RingSink) and through the CLI's `--trace` JSONL file.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use distclass::core::CentroidInstance;
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::linalg::Vector;
use distclass::net::Topology;
use distclass::obs::{GrainOp, RingSink, TraceEvent, Tracer};
use distclass::runtime::{run_chaos_channel_cluster, ClusterConfig, FaultPlan};

fn two_site_values(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| {
            let x = if i % 2 == 0 { 0.0 } else { 10.0 };
            Vector::from(vec![x, x])
        })
        .collect()
}

/// Per-node grain balance replayed from a trace: for every node,
///
/// `final = initial/n + Σ deltas(merge + return − split)
///                    − Σ voided(merged + returned − split)`
///
/// `GrainDelta` events are emitted live, including by incarnations whose
/// log batches the supervisor later rolls back; `GrainsVoided` carries
/// exactly those rolled-back sums, so subtracting them recovers the
/// durable ledger the auditor certifies.
#[derive(Default)]
struct Balance {
    deltas: i128,
    voided: i128,
}

fn reconcile(events: &[TraceEvent]) -> (u64, usize, HashMap<usize, Balance>) {
    let (mut initial_total, mut nodes) = (0u64, 0usize);
    let mut balances: HashMap<usize, Balance> = HashMap::new();
    for ev in events {
        match ev {
            TraceEvent::ClusterStarted {
                nodes: n,
                initial_grains,
            } => {
                nodes = *n;
                initial_total = *initial_grains;
            }
            TraceEvent::GrainDelta {
                node, op, grains, ..
            } => {
                let signed = match op {
                    GrainOp::Merge | GrainOp::Return => *grains as i128,
                    GrainOp::Split => -(*grains as i128),
                };
                balances.entry(*node).or_default().deltas += signed;
            }
            TraceEvent::GrainsVoided {
                node,
                split,
                merged,
                returned,
                ..
            } => {
                balances.entry(*node).or_default().voided +=
                    *merged as i128 + *returned as i128 - *split as i128;
            }
            _ => {}
        }
    }
    (initial_total, nodes, balances)
}

fn assert_trace_reconciles(events: &[TraceEvent], label: &str) {
    let (initial_total, nodes, balances) = reconcile(events);
    assert!(nodes > 0, "{label}: no cluster_started event");
    assert_eq!(
        initial_total % nodes as u64,
        0,
        "{label}: initial grains not evenly minted"
    );
    let per_node = (initial_total / nodes as u64) as i128;

    let mut finals: HashMap<usize, (String, u64)> = HashMap::new();
    for ev in events {
        if let TraceEvent::PeerFinal {
            node,
            outcome,
            grains,
        } = ev
        {
            finals.insert(*node, (outcome.clone(), *grains));
        }
    }
    assert_eq!(finals.len(), nodes, "{label}: missing peer_final events");

    for (node, (outcome, grains)) in &finals {
        // A panic without a death receipt makes the books inexact; the
        // audit_summary check below would already have caught that.
        assert_ne!(outcome, "panicked", "{label}: node {node} panicked");
        let b = balances.get(node).map(|b| b.deltas - b.voided).unwrap_or(0);
        assert_eq!(
            per_node + b,
            *grains as i128,
            "{label}: node {node} trace balance does not match its final holdings"
        );
    }

    let audit = events.iter().find_map(|ev| match ev {
        TraceEvent::AuditSummary {
            initial,
            final_grains,
            exact,
            conserved,
            ..
        } => Some((*initial, *final_grains, *exact, *conserved)),
        _ => None,
    });
    let (audit_initial, audit_final, exact, conserved) =
        audit.unwrap_or_else(|| panic!("{label}: no audit_summary event"));
    assert_eq!(audit_initial, initial_total, "{label}: audit initial");
    assert!(exact, "{label}: audit books are inexact");
    assert!(conserved, "{label}: audit says grains were not conserved");
    // The auditor's final-grain count only covers nodes alive at
    // shutdown; the trace's per-node balances must sum to the same.
    let completed: i128 = finals
        .iter()
        .filter(|(_, (outcome, _))| outcome == "completed")
        .map(|(_, (_, grains))| *grains as i128)
        .sum();
    assert_eq!(completed, audit_final as i128, "{label}: audit final");
}

fn crash_restart_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .crash_restart(Duration::from_millis(300), 2, Duration::from_millis(200))
        .crash_restart(Duration::from_millis(500), 5, Duration::from_millis(250))
}

/// In-process: a chaos run traced into a RingSink reconciles against the
/// auditor's certified report.
#[test]
fn ring_sink_trace_reconciles_with_audit() {
    const N: usize = 8;
    let sink = Arc::new(RingSink::new(200_000));
    let config = ClusterConfig {
        tick: Duration::from_millis(1),
        tol: 1e-9,
        stable_window: Duration::from_millis(100),
        max_wall: Duration::from_secs(30),
        drain_wall: Duration::from_secs(15),
        seed: 7,
        audit: true,
        tracer: Tracer::new(Arc::clone(&sink) as _),
        ..ClusterConfig::default()
    };
    let inst = Arc::new(CentroidInstance::new(2).expect("k >= 1"));
    let report = run_chaos_channel_cluster(
        &Topology::complete(N),
        inst,
        &two_site_values(N),
        &crash_restart_plan(7),
        &config,
    );
    let audit = report.audit.as_ref().expect("audit was requested");
    assert!(audit.ok(), "audit failed\n{audit}");

    let events = sink.events();
    assert!(
        events.len() < 200_000,
        "ring filled up; reconciliation would be lossy"
    );
    assert_trace_reconciles(&events, "ring sink");

    // Cross-check the trace against the in-memory report too.
    let summary = events
        .iter()
        .find_map(|ev| match ev {
            TraceEvent::AuditSummary {
                initial,
                final_grains,
                gains,
                losses,
                ..
            } => Some((*initial, *final_grains, *gains, *losses)),
            _ => None,
        })
        .expect("audit_summary present");
    assert_eq!(summary.0, audit.initial_grains);
    assert_eq!(summary.1, audit.final_grains);
    assert_eq!(summary.2, audit.declared_gains);
    assert_eq!(summary.3, audit.declared_losses);
}

/// End to end through the binary: `run-cluster --trace` writes JSONL that
/// parses line by line back into [`TraceEvent`]s and reconciles
/// self-contained, with no access to the in-memory report.
#[test]
fn cli_trace_jsonl_reconciles() {
    let dir = std::env::temp_dir().join(format!("distclass-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace = dir.join("trace.jsonl");
    let metrics = dir.join("metrics.json");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_distclass"))
        .args([
            "run-cluster",
            "--transport",
            "channel",
            "--n",
            "8",
            "--max-secs",
            "20",
            "--faults",
            "crash@300ms:2+200ms;crash@500ms:5+250ms",
            "--audit",
            "--trace",
            trace.to_str().expect("utf-8 path"),
            "--metrics-json",
            metrics.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("spawn distclass");
    assert!(
        out.status.success(),
        "run-cluster failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    let raw = std::fs::read_to_string(&trace).expect("trace file written");
    let events: Vec<TraceEvent> = raw
        .lines()
        .map(|line| {
            TraceEvent::from_json(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"))
        })
        .collect();
    assert!(!events.is_empty(), "trace file is empty");
    assert_trace_reconciles(&events, "cli jsonl");

    let metrics_doc = std::fs::read_to_string(&metrics).expect("metrics file written");
    for key in ["\"nodes\"", "\"audit\"", "\"metrics\"", "\"total_grains\""] {
        assert!(metrics_doc.contains(key), "metrics json missing {key}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The gossip runner's tracer emits per-round telemetry alongside the
/// engine's round events, with internally consistent values.
#[test]
fn gossip_round_sim_emits_round_and_telemetry_events() {
    const N: usize = 32;
    const ROUNDS: u64 = 5;
    let sink = Arc::new(RingSink::new(4096));
    let values: Vec<Vector> = (0..N).map(|i| Vector::from([i as f64 % 4.0])).collect();
    let inst = Arc::new(CentroidInstance::new(2).expect("k >= 1"));
    let mut sim = RoundSim::new(
        Topology::complete(N),
        inst,
        &values,
        &GossipConfig::default(),
    )
    .with_tracer(Tracer::new(Arc::clone(&sink) as _));
    sim.run_rounds(ROUNDS);

    let events = sink.events();
    let rounds: Vec<_> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::RoundCompleted { round, live, .. } => Some((*round, *live)),
            _ => None,
        })
        .collect();
    assert_eq!(rounds.len(), ROUNDS as usize);
    for (i, (round, live)) in rounds.iter().enumerate() {
        // The engine reports the 0-based index of the round that just ran.
        assert_eq!(*round, i as u64);
        assert_eq!(*live, N, "no crash model, everyone stays live");
    }

    let samples: Vec<_> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Telemetry(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(samples.len(), ROUNDS as usize);
    for s in &samples {
        assert_eq!(s.live, N);
        assert!(s.classifications_mean >= 1.0);
        assert!(s.classifications_max as f64 >= s.classifications_mean);
        assert!(s.weight_spread.is_finite() && s.weight_spread >= 0.0);
    }
}
