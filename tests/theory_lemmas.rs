//! Empirical verification of the convergence proof's lemmas (§6) on live
//! audited executions:
//!
//! * **Lemma 2** — every maximal reference angle `ϕᵢ,max(t)` is monotone
//!   non-increasing over the run;
//! * **Lemma 3 (class formation)** — after convergence the pool splits
//!   into direction classes, one per destination collection, consistent
//!   across nodes;
//! * **Lemma 6 (weight diffusion)** — the relative weight a node assigns
//!   to each class converges to the class's global weight share.

use std::sync::Arc;

use distclass::core::{theory, CentroidInstance, GmInstance, Instance, Quantum};
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::linalg::Vector;
use distclass::net::Topology;

fn audited_cfg() -> GossipConfig {
    GossipConfig {
        audit: true,
        quantum: Quantum::new(1 << 16),
        ..GossipConfig::default()
    }
}

fn bimodal(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| Vector::from([if i % 2 == 0 { 0.0 } else { 8.0 } + 0.01 * i as f64]))
        .collect()
}

fn pool_angles<I: Instance>(sim: &RoundSim<I>) -> Vec<f64> {
    let classifications = sim.live_classifications();
    let pool = theory::aux_pool(classifications.iter().copied()).expect("audited run");
    theory::max_reference_angles(pool).expect("non-empty pool")
}

#[test]
fn lemma2_reference_angles_monotone_on_complete_graph() {
    let n = 16;
    let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(Topology::complete(n), inst, &bimodal(n), &audited_cfg());
    let mut previous = pool_angles(&sim);
    for round in 0..40 {
        sim.run_round();
        let current = pool_angles(&sim);
        for (i, (now, before)) in current.iter().zip(previous.iter()).enumerate() {
            assert!(
                *now <= before + 1e-9,
                "round {round}: ϕ_{i},max increased from {before} to {now}"
            );
        }
        previous = current;
    }
}

#[test]
fn lemma2_holds_on_sparse_ring_with_gm_instance() {
    let n = 10;
    let inst = Arc::new(GmInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(Topology::ring(n), inst, &bimodal(n), &audited_cfg());
    let mut previous = pool_angles(&sim);
    for round in 0..60 {
        sim.run_round();
        let current = pool_angles(&sim);
        for (i, (now, before)) in current.iter().zip(previous.iter()).enumerate() {
            assert!(
                *now <= before + 1e-9,
                "round {round}: ϕ_{i},max increased from {before} to {now}"
            );
        }
        previous = current;
    }
}

#[test]
fn lemma3_class_formation_after_convergence() {
    let n = 20;
    let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(Topology::complete(n), inst, &bimodal(n), &audited_cfg());
    sim.run_rounds(120);

    let classifications = sim.live_classifications();
    let pool = theory::aux_pool(classifications.iter().copied()).expect("audited run");
    // Tight angular tolerance: the pool must have collapsed into exactly
    // two direction classes (one per input cluster).
    let classes = theory::direction_classes(&pool, 0.15);
    assert_eq!(
        classes.len(),
        2,
        "expected 2 destination classes, got {}",
        classes.len()
    );
    // Every node contributes exactly one collection to each class.
    let membership = theory::membership_table(&classes, pool.len());
    let mut offset = 0;
    for c in &classifications {
        let mut seen = vec![false; classes.len()];
        for j in 0..c.len() {
            let class = membership[offset + j];
            assert!(!seen[class], "node holds two collections of one class");
            seen[class] = true;
        }
        offset += c.len();
    }
}

#[test]
fn lemma6_class_weights_converge_to_global_shares() {
    // 1/4 of the values at 8.0, 3/4 at 0.0: every node's classification
    // should assign ≈25 % / ≈75 % of its weight to the two classes.
    let n = 24;
    let values: Vec<Vector> = (0..n)
        .map(|i| Vector::from([if i % 4 == 0 { 8.0 } else { 0.0 } + 0.01 * i as f64]))
        .collect();
    let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(Topology::complete(n), inst, &values, &audited_cfg());
    sim.run_rounds(200);

    let classifications = sim.live_classifications();
    let pool = theory::aux_pool(classifications.iter().copied()).expect("audited run");
    let classes = theory::direction_classes(&pool, 0.15);
    assert_eq!(classes.len(), 2);
    let membership = theory::membership_table(&classes, pool.len());

    // Identify which class is the heavy one from global weight.
    let mut offset = 0;
    let mut global = [0.0; 2];
    for c in &classifications {
        let fr = theory::class_weight_fractions(c, &membership, 2, offset);
        global[0] += fr[0];
        global[1] += fr[1];
        offset += c.len();
    }
    let heavy = if global[0] > global[1] { 0 } else { 1 };

    let mut offset = 0;
    for (node, c) in classifications.iter().enumerate() {
        let fr = theory::class_weight_fractions(c, &membership, 2, offset);
        assert!(
            (fr[heavy] - 0.75).abs() < 0.08,
            "node {node}: heavy-class share {} (want ≈0.75)",
            fr[heavy]
        );
        offset += c.len();
    }
}
