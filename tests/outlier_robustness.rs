//! End-to-end robust-aggregation behavior (the §5.3.2 application) at test
//! scale: outlier quarantine, robust-vs-regular error ordering, and crash
//! tolerance.

use std::sync::Arc;

use distclass::baselines::PushSumSim;
use distclass::core::{outlier, GmInstance};
use distclass::experiments::data::{outlier_mixture, F_MIN};
use distclass::experiments::{fig3, fig4};
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::linalg::Vector;
use distclass::net::{CrashModel, Topology};

#[test]
fn robust_mean_ignores_far_outliers() {
    let n = 150;
    let (values, _) = outlier_mixture(n, 8, 14.0, F_MIN, 21);
    let inst = Arc::new(GmInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(
        Topology::complete(n),
        inst,
        &values,
        &GossipConfig::default(),
    );
    sim.run_rounds(30);

    let truth = Vector::zeros(2);
    for &i in sim.live_nodes().iter().take(20) {
        let c = sim.classification_of(i);
        let m = outlier::robust_mean(c).expect("non-empty classification");
        assert!(m.distance(&truth) < 0.4, "node {i} robust mean {m}");
    }
}

#[test]
fn regular_aggregation_is_pulled_by_outliers() {
    let n = 150;
    let delta = 14.0;
    let (values, _) = outlier_mixture(n, 8, delta, F_MIN, 21);
    let mut sim = PushSumSim::new(Topology::complete(n), &values, 21);
    sim.run_rounds(30);
    let err = sim
        .mean_error(&Vector::zeros(2))
        .expect("no crash model, nodes live");
    let expected_pull = delta * 8.0 / n as f64;
    assert!(
        (err - expected_pull).abs() < 0.3,
        "regular error {err}, expected pull {expected_pull}"
    );
}

#[test]
fn fig3_point_shapes_hold_at_test_scale() {
    let cfg = fig3::Fig3Config {
        n: 100,
        n_outliers: 5,
        deltas: vec![],
        rounds: 25,
        f_min: F_MIN,
        seed: 3,
    };
    let near = fig3::run_point(&cfg, 1.0).expect("valid config");
    let far = fig3::run_point(&cfg, 18.0).expect("valid config");
    // Far outliers get separated; regular error grows with Δ.
    assert!(far.missed_outliers < 0.25, "missed {}", far.missed_outliers);
    assert!(far.regular_error > near.regular_error);
    assert!(far.robust_error < far.regular_error);
}

#[test]
fn fig4_series_shapes_hold_at_test_scale() {
    let cfg = fig4::Fig4Config {
        n: 120,
        n_outliers: 6,
        delta: 10.0,
        rounds: 25,
        crash_prob: 0.04,
        seed: 13,
    };
    let rows = fig4::run(&cfg).expect("valid config");
    let last = rows.last().expect("rows produced");
    // Robust beats regular in both fault regimes at convergence.
    assert!(last.robust_no_crash < last.regular_no_crash);
    assert!(last.robust_crash < last.regular_crash);
    // Crashes happened but survivors remain.
    assert!(last.live_nodes_crash < 120);
    assert!(last.live_nodes_crash > 10);
    // Convergence speed: error at round 25 is far below round 1.
    assert!(last.robust_no_crash < rows[0].robust_no_crash / 3.0);
}

#[test]
fn outlier_collection_survives_crashes() {
    let n = 120;
    let (values, _) = outlier_mixture(n, 6, 12.0, F_MIN, 31);
    let cfg = GossipConfig {
        crash: CrashModel::per_round(0.03),
        ..GossipConfig::default()
    };
    let inst = Arc::new(GmInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(Topology::complete(n), inst, &values, &cfg);
    sim.run_rounds(30);

    // Most surviving nodes should still see a light far collection
    // (the outliers) next to the heavy good one.
    let mut with_outlier_collection = 0;
    let live = sim.live_nodes();
    for &i in &live {
        let c = sim.classification_of(i);
        if c.len() == 2 {
            let good = outlier::good_collection_index(c).expect("non-empty");
            let other = 1 - good;
            if c.collection(other).summary.mean[1] > 6.0 {
                with_outlier_collection += 1;
            }
        }
    }
    assert!(
        with_outlier_collection * 10 >= live.len() * 8,
        "{with_outlier_collection} of {} survivors kept the outlier collection",
        live.len()
    );
}

#[test]
fn robust_average_survives_crashes_under_asynchrony() {
    use distclass::gossip::AsyncSim;
    use distclass::net::DelayModel;
    let n = 100;
    let (values, _) = outlier_mixture(n, 5, 12.0, F_MIN, 17);
    let inst = Arc::new(GmInstance::new(2).expect("k = 2 is valid"));
    let mut sim = AsyncSim::with_crash_rate(
        Topology::complete(n),
        inst,
        &values,
        &GossipConfig::default(),
        DelayModel::Uniform { min: 0.1, max: 2.0 },
        Some(0.01),
    );
    sim.run_until(60.0);
    let live = sim.live_nodes();
    assert!(live.len() < n, "no crashes happened");
    assert!(live.len() > 10, "too many crashes");
    let truth = Vector::zeros(2);
    let err: f64 = live
        .iter()
        .map(|&i| {
            outlier::robust_mean(sim.classification_of(i))
                .expect("non-empty classification")
                .distance(&truth)
        })
        .sum::<f64>()
        / live.len() as f64;
    assert!(err < 0.5, "robust error {err} under async crashes");
}
