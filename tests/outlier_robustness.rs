//! End-to-end robust-aggregation behavior (the §5.3.2 application) at test
//! scale: outlier quarantine, robust-vs-regular error ordering, and crash
//! tolerance.

use std::sync::Arc;

use distclass::baselines::PushSumSim;
use distclass::core::outlier::{self, RobustOutcome};
use distclass::core::{Classification, Collection, GaussianSummary, GmInstance, Weight};
use distclass::experiments::data::{outlier_mixture, F_MIN};
use distclass::experiments::{fig3, fig4};
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::linalg::{Matrix, Vector};
use distclass::net::{CrashModel, Topology};

#[test]
fn robust_mean_ignores_far_outliers() {
    let n = 150;
    let (values, _) = outlier_mixture(n, 8, 14.0, F_MIN, 21);
    let inst = Arc::new(GmInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(
        Topology::complete(n),
        inst,
        &values,
        &GossipConfig::default(),
    );
    sim.run_rounds(30);

    let truth = Vector::zeros(2);
    for &i in sim.live_nodes().iter().take(20) {
        let c = sim.classification_of(i);
        let m = outlier::robust_mean(c).expect("non-empty classification");
        assert!(m.distance(&truth) < 0.4, "node {i} robust mean {m}");
    }
}

#[test]
fn regular_aggregation_is_pulled_by_outliers() {
    let n = 150;
    let delta = 14.0;
    let (values, _) = outlier_mixture(n, 8, delta, F_MIN, 21);
    let mut sim = PushSumSim::new(Topology::complete(n), &values, 21);
    sim.run_rounds(30);
    let err = sim
        .mean_error(&Vector::zeros(2))
        .expect("no crash model, nodes live");
    let expected_pull = delta * 8.0 / n as f64;
    assert!(
        (err - expected_pull).abs() < 0.3,
        "regular error {err}, expected pull {expected_pull}"
    );
}

#[test]
fn fig3_point_shapes_hold_at_test_scale() {
    let cfg = fig3::Fig3Config {
        n: 100,
        n_outliers: 5,
        deltas: vec![],
        rounds: 25,
        f_min: F_MIN,
        seed: 3,
    };
    let near = fig3::run_point(&cfg, 1.0).expect("valid config");
    let far = fig3::run_point(&cfg, 18.0).expect("valid config");
    // Far outliers get separated; regular error grows with Δ.
    assert!(far.missed_outliers < 0.25, "missed {}", far.missed_outliers);
    assert!(far.regular_error > near.regular_error);
    assert!(far.robust_error < far.regular_error);
}

#[test]
fn fig4_series_shapes_hold_at_test_scale() {
    let cfg = fig4::Fig4Config {
        n: 120,
        n_outliers: 6,
        delta: 10.0,
        rounds: 25,
        crash_prob: 0.04,
        seed: 13,
    };
    let rows = fig4::run(&cfg).expect("valid config");
    let last = rows.last().expect("rows produced");
    // Robust beats regular in both fault regimes at convergence.
    assert!(last.robust_no_crash < last.regular_no_crash);
    assert!(last.robust_crash < last.regular_crash);
    // Crashes happened but survivors remain.
    assert!(last.live_nodes_crash < 120);
    assert!(last.live_nodes_crash > 10);
    // Convergence speed: error at round 25 is far below round 1.
    assert!(last.robust_no_crash < rows[0].robust_no_crash / 3.0);
}

#[test]
fn outlier_collection_survives_crashes() {
    let n = 120;
    let (values, _) = outlier_mixture(n, 6, 12.0, F_MIN, 31);
    let cfg = GossipConfig {
        crash: CrashModel::per_round(0.03),
        ..GossipConfig::default()
    };
    let inst = Arc::new(GmInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(Topology::complete(n), inst, &values, &cfg);
    sim.run_rounds(30);

    // Most surviving nodes should still see a light far collection
    // (the outliers) next to the heavy good one.
    let mut with_outlier_collection = 0;
    let live = sim.live_nodes();
    for &i in &live {
        let c = sim.classification_of(i);
        if c.len() == 2 {
            let good = outlier::good_collection_index(c).expect("non-empty");
            let other = 1 - good;
            if c.collection(other).summary.mean[1] > 6.0 {
                with_outlier_collection += 1;
            }
        }
    }
    assert!(
        with_outlier_collection * 10 >= live.len() * 8,
        "{with_outlier_collection} of {} survivors kept the outlier collection",
        live.len()
    );
}

/// A weighted Gaussian collection at `mean` with unit covariance.
fn gauss(mean: [f64; 2], grains: u64) -> Collection<GaussianSummary> {
    Collection::new(
        GaussianSummary::new(Vector::from(mean), Matrix::identity(2)),
        Weight::from_grains(grains),
    )
}

/// A heavy good collection at the origin (σ = 1 by unit covariance).
fn honest_base() -> Classification<GaussianSummary> {
    let mut base = Classification::new();
    base.push(gauss([0.0, 0.0], 256));
    base
}

/// The documented stealth boundary: a poisoned summary sitting *exactly*
/// at the `1.5σ` trim bound is kept (the trim rule is strict), so a
/// bound-riding adversary is handled by weight dilution and the
/// stochastic audit, not by a knife-edge geometric comparison — while a
/// summary one ulp of slack beyond the bound is trimmed.
#[test]
fn at_bound_poison_is_kept_and_beyond_bound_is_trimmed() {
    let mut base = honest_base();
    let mut incoming = Classification::new();
    incoming.push(gauss([1.5, 0.0], 8)); // exactly at 1.5σ
    incoming.push(gauss([1.5001, 0.0], 8)); // strictly beyond
    let out = outlier::robust_receive(&mut base, incoming, 1.5);
    assert_eq!(
        out,
        RobustOutcome::Merged {
            kept: 1,
            trimmed: 1
        }
    );
    assert_eq!(base.len(), 2, "the at-bound collection was absorbed");
    // The at-bound poison is diluted: 8 grains against 256 moves the
    // overall mean by at most 1.5 · 8/264 ≈ 0.045.
    let m = outlier::overall_mean(&base).expect("non-empty");
    assert!(m[0] > 0.0 && m[0] < 0.06, "diluted pull, got {m}");
}

/// The all-adversarial-neighbor degenerate case: every incoming
/// collection is beyond the bound, so the merge absorbs nothing and the
/// base is untouched — and an entirely empty classification is the same
/// no-op rather than a panic or a reference-less absorb.
#[test]
fn all_adversarial_input_leaves_the_base_untouched() {
    let mut base = honest_base();
    let before = base.clone();
    let mut incoming = Classification::new();
    incoming.push(gauss([9.0, 0.0], 64));
    incoming.push(gauss([0.0, -40.0], 64));
    assert_eq!(
        outlier::robust_receive(&mut base, incoming, 1.5),
        RobustOutcome::Nothing
    );
    assert_eq!(base, before, "trimmed-to-nothing merge must not mutate");
    assert_eq!(
        outlier::robust_receive(&mut base, Classification::new(), 1.5),
        RobustOutcome::Nothing
    );
    assert_eq!(base, before);
}

/// NaN/±inf-poisoned summaries are rejected whole without panicking —
/// one non-finite collection condemns the entire incoming
/// classification (it may have corrupted the rest), and a non-finite
/// *weightless* mean never reaches the distance comparison.
#[test]
fn non_finite_poison_is_rejected_without_panic() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut base = honest_base();
        let before = base.clone();
        let mut incoming = Classification::new();
        incoming.push(gauss([0.1, 0.0], 8)); // innocuous passenger
        incoming.push(gauss([bad, 0.0], 8));
        assert_eq!(
            outlier::robust_receive(&mut base, incoming, 1.5),
            RobustOutcome::RejectedNonFinite,
            "poison {bad}"
        );
        assert_eq!(base, before, "rejected classification must not leak in");
        // Non-finite covariance is caught by the same screen.
        let mut incoming = Classification::new();
        incoming.push(Collection::new(
            GaussianSummary::new(Vector::from([0.1, 0.0]), Matrix::identity(2).scaled(bad)),
            Weight::from_grains(8),
        ));
        assert_eq!(
            outlier::robust_receive(&mut base, incoming, 1.5),
            RobustOutcome::RejectedNonFinite,
            "cov poison {bad}"
        );
        assert_eq!(base, before);
    }
}

#[test]
fn robust_average_survives_crashes_under_asynchrony() {
    use distclass::gossip::AsyncSim;
    use distclass::net::DelayModel;
    let n = 100;
    let (values, _) = outlier_mixture(n, 5, 12.0, F_MIN, 17);
    let inst = Arc::new(GmInstance::new(2).expect("k = 2 is valid"));
    let mut sim = AsyncSim::with_crash_rate(
        Topology::complete(n),
        inst,
        &values,
        &GossipConfig::default(),
        DelayModel::Uniform { min: 0.1, max: 2.0 },
        Some(0.01),
    );
    sim.run_until(60.0);
    let live = sim.live_nodes();
    assert!(live.len() < n, "no crashes happened");
    assert!(live.len() > 10, "too many crashes");
    let truth = Vector::zeros(2);
    let err: f64 = live
        .iter()
        .map(|&i| {
            outlier::robust_mean(sim.classification_of(i))
                .expect("non-empty classification")
                .distance(&truth)
        })
        .sum::<f64>()
        / live.len() as f64;
    assert!(err < 0.5, "robust error {err} under async crashes");
}
