//! End-to-end tests for the deployment runtime: real concurrent peers
//! (one OS thread each) gossiping over in-process channels and real UDP
//! sockets, asserting the paper's two headline guarantees — cluster-wide
//! agreement and exact conservation of the total weight.
//!
//! Set `DISTCLASS_SKIP_UDP=1` to skip the socket-based smoke test in
//! environments that forbid binding loopback sockets.

use std::sync::Arc;
use std::time::Duration;

use distclass::core::{CentroidInstance, Quantum};
use distclass::linalg::Vector;
use distclass::net::Topology;
use distclass::runtime::{
    run_channel_cluster, run_lossy_channel_cluster, run_udp_cluster, ClusterConfig, ClusterReport,
};

/// Exact two-site readings: even peers observe (0, 0), odd peers (10, 10).
/// Merging identical exact values keeps the centroids exactly on-site, so
/// converged classifications render byte-identically on every node.
fn two_site_values(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| {
            let x = if i % 2 == 0 { 0.0 } else { 10.0 };
            Vector::from(vec![x, x])
        })
        .collect()
}

fn config() -> ClusterConfig {
    ClusterConfig {
        tick: Duration::from_millis(1),
        tol: 1e-9,
        stable_window: Duration::from_millis(100),
        max_wall: Duration::from_secs(30),
        seed: 11,
        ..ClusterConfig::default()
    }
}

/// Renders a node's classification as sorted `(summary, pct)` atoms.
fn render(report: &ClusterReport<Vector>, node: usize) -> Vec<(String, f64)> {
    let c = &report.nodes[node].classification;
    let total = c.total_weight();
    let mut parts: Vec<(String, f64)> = c
        .iter()
        .map(|col| {
            (
                col.summary.to_string(),
                col.weight.fraction_of(total) * 100.0,
            )
        })
        .collect();
    parts.sort_by(|a, b| a.0.cmp(&b.0));
    parts
}

/// Agreement up to `pct_tol` percentage points on the mixture weights.
///
/// Grain counts are integers, so halving leaves off-by-one residues, and
/// how much mass is still in flight when convergence is detected depends
/// on thread scheduling — a stale frame settling during drain lands its
/// whole weight on *one* receiver. Comparing every node against node 0
/// used to double that noise (node 0 deviates one way, the probed node
/// the other), which made the tight call sites flake on loaded CI
/// runners. Each node is therefore measured against the cluster-wide
/// *aggregate* proportions: the grand total is immune to where in-flight
/// mass happened to settle, so a single stale frame shows up once, not
/// twice. Conservation stays exact either way, and that assertion is the
/// hard one.
fn assert_agreement_and_conservation_within(
    report: &ClusterReport<Vector>,
    n: usize,
    quantum: Quantum,
    pct_tol: f64,
) {
    assert!(report.drained, "cluster failed to drain in-flight frames");
    assert!(
        report.converged,
        "no convergence: dispersion {}",
        report.final_dispersion
    );
    let reference = render(report, 0);
    assert_eq!(reference.len(), 2, "expected both sites: {reference:?}");
    let summaries = |r: &[(String, f64)]| r.iter().map(|(s, _)| s.clone()).collect::<Vec<_>>();
    for i in 1..n {
        assert_eq!(
            summaries(&render(report, i)),
            summaries(&reference),
            "node {i} disagrees on centroids"
        );
    }
    // Cluster-wide proportions: per-site grains summed over every node,
    // in the same sorted-summary order `render` uses.
    let mut site_grains = vec![0u64; reference.len()];
    for i in 0..n {
        let c = &report.nodes[i].classification;
        let mut cols: Vec<_> = c.iter().collect();
        cols.sort_by_key(|c| c.summary.to_string());
        for (j, col) in cols.iter().enumerate() {
            site_grains[j] += col.weight.grains();
        }
    }
    let grand_total: u64 = site_grains.iter().sum();
    for i in 0..n {
        for (j, (s, have)) in render(report, i).iter().enumerate() {
            let want = site_grains[j] as f64 / grand_total as f64 * 100.0;
            assert!(
                (have - want).abs() <= pct_tol,
                "node {i}: {s} at {have:.2}% vs aggregate {want:.2}% (tol {pct_tol})"
            );
        }
    }
    assert_eq!(
        report.total_grains(),
        n as u64 * quantum.grains_per_unit(),
        "grains not conserved"
    );
}

#[test]
fn sixteen_threaded_peers_converge_on_a_ring() {
    const N: usize = 16;
    let inst = Arc::new(CentroidInstance::new(2).unwrap());
    let cfg = config();
    let report = run_channel_cluster(&Topology::ring(N), inst, &two_site_values(N), &cfg);
    // Reliable links still leave scheduling-dependent in-flight mass at
    // detection time; 3 points absorbs a worst-case stale half without
    // weakening the aggregate comparison.
    assert_agreement_and_conservation_within(&report, N, cfg.quantum, 3.0);

    // Reliable channels never need the retry machinery.
    let totals = report.total_metrics();
    assert_eq!(totals.returned, 0);
    assert_eq!(totals.decode_errors, 0);
    assert!(totals.msgs_sent > 0);
    assert_eq!(totals.acks_received, totals.msgs_sent - totals.send_errors);
}

#[test]
fn lossy_links_exercise_retries_without_losing_weight() {
    const N: usize = 8;
    let inst = Arc::new(CentroidInstance::new(2).unwrap());
    let cfg = ClusterConfig {
        stable_window: Duration::from_millis(150),
        ..config()
    };
    // A 30 % data-frame loss rate forces steady retransmission traffic.
    // The weight-proportion tolerance is deliberately loose: how much
    // mass is still in flight when convergence is detected depends on
    // retry timing, so on a loaded machine (CI runners, parallel test
    // binaries) stale frames settling during drain can shift one
    // receiver's proportions by 10+ points. The hard guarantees under
    // loss are agreement on the centroids, exact conservation, and that
    // the retry machinery actually fired — not tight proportions.
    let report =
        run_lossy_channel_cluster(&Topology::complete(N), inst, &two_site_values(N), 0.3, &cfg);
    assert_agreement_and_conservation_within(&report, N, cfg.quantum, 25.0);

    let totals = report.total_metrics();
    assert!(
        totals.retries > 0,
        "30% loss must trigger retransmissions: {totals}"
    );
}

#[test]
fn udp_smoke_eight_peers_on_loopback() {
    if std::env::var_os("DISTCLASS_SKIP_UDP").is_some() {
        eprintln!("DISTCLASS_SKIP_UDP set; skipping UDP smoke test");
        return;
    }
    const N: usize = 8;
    let inst = Arc::new(CentroidInstance::new(2).unwrap());
    let cfg = ClusterConfig {
        tick: Duration::from_millis(2),
        ..config()
    };
    let report = run_udp_cluster(&Topology::complete(N), inst, &two_site_values(N), &cfg)
        .expect("bind loopback sockets");
    // Loopback UDP rarely drops, but a retried stale frame is possible,
    // and the 2 ms tick leaves more mass in flight at detection than the
    // channel runs do.
    assert_agreement_and_conservation_within(&report, N, cfg.quantum, 10.0);
}
