//! Exhaustive schedule exploration (model-checking style): on a small
//! configuration, enumerate *every* interleaving of split/send/receive
//! operations up to a fixed depth and assert the algorithm's safety
//! invariants on every reachable state:
//!
//! * exact weight conservation (nodes + in-flight messages),
//! * the `k` bound on every classification,
//! * no zero-weight collections,
//! * no quantum-weight collection isolated by a partition (checked by the
//!   node's internal validator, which panics on violation),
//! * summaries remain finite.
//!
//! The paper's model allows arbitrary asynchrony; randomized simulators
//! sample schedules, while this test *covers* them (up to the depth bound)
//! — thousands of executions no fuzzer is guaranteed to find.

use std::sync::Arc;

use distclass::core::{CentroidInstance, Classification, ClassifierNode, Quantum};
use distclass::linalg::Vector;

type Node = ClassifierNode<CentroidInstance>;
type Msg = Classification<Vector>;

/// One reachable system state: node states plus in-flight messages.
#[derive(Clone)]
struct State {
    nodes: Vec<Node>,
    // (recipient, payload) — order in the vec is NOT delivery order; any
    // in-flight message may be delivered next (asynchrony).
    in_flight: Vec<(usize, Msg)>,
}

fn total_grains(state: &State) -> u64 {
    let at_nodes: u64 = state
        .nodes
        .iter()
        .map(|n| n.classification().total_weight().grains())
        .sum();
    let in_flight: u64 = state
        .in_flight
        .iter()
        .map(|(_, m)| m.total_weight().grains())
        .sum();
    at_nodes + in_flight
}

fn check_invariants(state: &State, expected_grains: u64, k: usize, trace: &[String]) {
    assert_eq!(
        total_grains(state),
        expected_grains,
        "weight not conserved after {trace:?}"
    );
    for (i, node) in state.nodes.iter().enumerate() {
        let c = node.classification();
        assert!(
            c.len() <= k,
            "node {i} exceeded k after {trace:?}: {} collections",
            c.len()
        );
        assert!(!c.is_empty(), "node {i} lost everything after {trace:?}");
        for col in c.iter() {
            assert!(!col.weight.is_zero(), "zero-weight collection at node {i}");
            assert!(
                col.summary.is_finite(),
                "non-finite summary at node {i} after {trace:?}"
            );
        }
    }
}

/// Depth-first exploration: at each step, either some node splits-and-sends
/// to some other node, or some in-flight message is delivered.
fn explore(
    state: &State,
    depth: usize,
    expected_grains: u64,
    k: usize,
    trace: &mut Vec<String>,
    visited: &mut u64,
) {
    check_invariants(state, expected_grains, k, trace);
    *visited += 1;
    if depth == 0 {
        return;
    }

    let n = state.nodes.len();
    // Action family 1: node `from` splits and sends to node `to`.
    for from in 0..n {
        for to in 0..n {
            if from == to {
                continue;
            }
            let mut next = state.clone();
            let msg = next.nodes[from].split_for_send();
            if !msg.is_empty() {
                next.in_flight.push((to, msg));
            }
            trace.push(format!("send {from}->{to}"));
            explore(&next, depth - 1, expected_grains, k, trace, visited);
            trace.pop();
        }
    }
    // Action family 2: deliver any in-flight message (any order — the
    // links are asynchronous and non-FIFO).
    for idx in 0..state.in_flight.len() {
        let mut next = state.clone();
        let (to, msg) = next.in_flight.swap_remove(idx);
        next.nodes[to].receive(msg);
        trace.push(format!("deliver #{idx}->{to}"));
        explore(&next, depth - 1, expected_grains, k, trace, visited);
        trace.pop();
    }
}

fn initial_state(values: &[f64], k: usize, grains_per_unit: u64) -> (State, u64) {
    let inst = Arc::new(CentroidInstance::new(k).expect("valid k"));
    let q = Quantum::new(grains_per_unit);
    let nodes: Vec<Node> = values
        .iter()
        .map(|&x| ClassifierNode::new(Arc::clone(&inst), &Vector::from([x]), q))
        .collect();
    let expected = values.len() as u64 * grains_per_unit;
    (
        State {
            nodes,
            in_flight: Vec::new(),
        },
        expected,
    )
}

#[test]
fn all_schedules_of_two_nodes_preserve_invariants() {
    // 2 nodes, k = 2, depth 7: every interleaving of sends and deliveries.
    let (state, expected) = initial_state(&[0.0, 10.0], 2, 16);
    let mut visited = 0;
    explore(&state, 7, expected, 2, &mut Vec::new(), &mut visited);
    assert!(visited > 1_000, "explored only {visited} states");
}

#[test]
fn all_schedules_of_three_nodes_preserve_invariants() {
    // 3 nodes, k = 2 (forces merging!), depth 5.
    let (state, expected) = initial_state(&[0.0, 5.0, 10.0], 2, 8);
    let mut visited = 0;
    explore(&state, 5, expected, 2, &mut Vec::new(), &mut visited);
    assert!(visited > 10_000, "explored only {visited} states");
}

#[test]
fn all_schedules_with_coarse_quantum_preserve_invariants() {
    // The nastiest regime: quantum-weight collections appear after a
    // couple of splits, exercising the singleton-merge rule on every path.
    let (state, expected) = initial_state(&[0.0, 1.0, 2.0], 2, 2);
    let mut visited = 0;
    explore(&state, 5, expected, 2, &mut Vec::new(), &mut visited);
    assert!(visited > 5_000, "explored only {visited} states");
}

#[test]
fn all_schedules_with_k_one_preserve_invariants() {
    // k = 1 degenerates to gossip averaging; every receive merges all.
    let (state, expected) = initial_state(&[0.0, 100.0], 1, 32);
    let mut visited = 0;
    explore(&state, 6, expected, 1, &mut Vec::new(), &mut visited);
    assert!(visited > 500, "explored only {visited} states");
}
