//! The offline trace analyzer (`obs::analyze` / the `trace-report` CLI
//! subcommand) must reach the same verdict as the live grain auditor:
//! replaying a chaos run's trace reconciles every peer ledger to the
//! grain (drift 0), and the CLI exit code encodes clean vs anomalous.

use std::sync::Arc;
use std::time::Duration;

use distclass::core::CentroidInstance;
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::linalg::Vector;
use distclass::net::Topology;
use distclass::obs::{prom, AnalyzeOptions, Json, RingSink, TraceReport, Tracer};
use distclass::runtime::{run_chaos_channel_cluster, ClusterConfig, FaultPlan};

fn two_site_values(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| {
            let x = if i % 2 == 0 { 0.0 } else { 10.0 };
            Vector::from(vec![x, x])
        })
        .collect()
}

/// In-process: the analyzer's replayed ledgers agree exactly with the
/// auditor's certified report on a crash-restart chaos run.
#[test]
fn trace_report_agrees_with_audit_on_chaos_run() {
    const N: usize = 8;
    let sink = Arc::new(RingSink::new(200_000));
    let config = ClusterConfig {
        tick: Duration::from_millis(1),
        tol: 1e-9,
        stable_window: Duration::from_millis(100),
        max_wall: Duration::from_secs(30),
        drain_wall: Duration::from_secs(15),
        seed: 7,
        audit: true,
        tracer: Tracer::new(Arc::clone(&sink) as _),
        ..ClusterConfig::default()
    };
    let plan = FaultPlan::new(7)
        .crash_restart(Duration::from_millis(300), 2, Duration::from_millis(200))
        .crash_restart(Duration::from_millis(500), 5, Duration::from_millis(250));
    let inst = Arc::new(CentroidInstance::new(2).expect("k >= 1"));
    let live = run_chaos_channel_cluster(
        &Topology::complete(N),
        inst,
        &two_site_values(N),
        &plan,
        &config,
    );
    let audit = live.audit.as_ref().expect("audit was requested");

    let events = sink.events();
    assert!(events.len() < 200_000, "ring filled; replay would be lossy");
    let report = TraceReport::from_events(&events, &AnalyzeOptions::default());

    // The replayed verdict must match the live auditor's.
    assert_eq!(report.clean(), audit.ok(), "verdicts disagree\n{report}");
    assert_eq!(report.nodes, N);
    assert_eq!(report.ledgers.len(), N, "one ledger per peer");
    for ledger in &report.ledgers {
        assert_eq!(
            ledger.drift,
            Some(0),
            "node {} ledger does not reconcile\n{report}",
            ledger.node
        );
    }
    let replayed = report.audit.as_ref().expect("audit summary in trace");
    assert_eq!(replayed.initial, audit.initial_grains);
    assert_eq!(replayed.final_grains, audit.final_grains);
    assert!(replayed.exact && replayed.conserved);
    assert!(report.faults.len() >= 2, "both scripted crashes recorded");
    assert!(
        report.anomalies.is_empty(),
        "unexpected: {:?}",
        report.anomalies
    );
}

/// The rounds engine's send/deliver events yield per-link latency
/// histograms whose quantiles sit inside the observed value range.
#[test]
fn trace_report_builds_link_latencies_from_round_sim() {
    const N: usize = 16;
    let sink = Arc::new(RingSink::new(100_000));
    let values: Vec<Vector> = (0..N).map(|i| Vector::from([i as f64 % 4.0])).collect();
    let inst = Arc::new(CentroidInstance::new(2).expect("k >= 1"));
    let mut sim = RoundSim::new(
        Topology::complete(N),
        inst,
        &values,
        &GossipConfig::default(),
    )
    .with_tracer(Tracer::new(Arc::clone(&sink) as _));
    sim.run_rounds(6);

    let report = TraceReport::from_events(&sink.events(), &AnalyzeOptions::default());
    assert!(report.clean(), "round sim trace not clean:\n{report}");
    assert!(!report.links.is_empty(), "no link stats extracted");
    assert!(report.rounds.count >= 6);
    let delivered: u64 = report.links.iter().map(|l| l.delivered).sum();
    assert_eq!(
        delivered, report.rounds.delivered,
        "per-link deliveries sum"
    );
    for link in &report.links {
        if link.delivered == 0 {
            continue;
        }
        let (p50, p99) = (link.latency_quantile(0.5), link.latency_quantile(0.99));
        assert!(p50.is_finite() && p50 >= 0.0);
        assert!(p99 >= p50, "quantiles must be monotone");
    }
}

/// End to end through the binary: `run-cluster --trace --metrics-prom`
/// then `trace-report` exits 0 with a CLEAN verdict and machine-readable
/// drift fields, and the Prometheus dump passes the exposition validator.
#[test]
fn cli_trace_report_clean_run_and_prom_dump() {
    let dir = std::env::temp_dir().join(format!("distclass-report-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace = dir.join("trace.jsonl");
    let prom_out = dir.join("metrics.prom");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_distclass"))
        .args([
            "run-cluster",
            "--transport",
            "channel",
            "--n",
            "8",
            "--max-secs",
            "20",
            "--faults",
            "crash@300ms:2+200ms;crash@500ms:5+250ms",
            "--audit",
            "--trace",
            trace.to_str().expect("utf-8 path"),
            "--metrics-prom",
            prom_out.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("spawn distclass run-cluster");
    assert!(
        out.status.success(),
        "run-cluster failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // Human report: exit 0 and an explicit CLEAN verdict.
    let report = std::process::Command::new(env!("CARGO_BIN_EXE_distclass"))
        .args(["trace-report", trace.to_str().expect("utf-8 path")])
        .output()
        .expect("spawn distclass trace-report");
    let stdout = String::from_utf8_lossy(&report.stdout);
    assert_eq!(
        report.status.code(),
        Some(0),
        "trace-report on a clean run must exit 0:\n{stdout}\n{}",
        String::from_utf8_lossy(&report.stderr)
    );
    assert!(
        stdout.contains("verdict: CLEAN"),
        "no verdict line:\n{stdout}"
    );

    // JSON report: parseable, clean, and every ledger drift is zero.
    let json_out = std::process::Command::new(env!("CARGO_BIN_EXE_distclass"))
        .args([
            "trace-report",
            trace.to_str().expect("utf-8 path"),
            "--json",
        ])
        .output()
        .expect("spawn distclass trace-report --json");
    assert_eq!(json_out.status.code(), Some(0));
    let doc = Json::parse(&String::from_utf8_lossy(&json_out.stdout)).expect("valid JSON report");
    assert_eq!(doc.get("clean").and_then(Json::as_bool), Some(true));
    let ledgers = match doc.get("ledgers") {
        Some(Json::Arr(items)) => items,
        other => panic!("ledgers must be an array, got {other:?}"),
    };
    assert_eq!(ledgers.len(), 8);
    for ledger in ledgers {
        assert_eq!(
            ledger.get("drift").and_then(Json::as_f64),
            Some(0.0),
            "nonzero drift in {ledger}"
        );
    }

    // The Prometheus dump is a valid exposition, line by line.
    let prom_text = std::fs::read_to_string(&prom_out).expect("prom dump written");
    prom::validate_exposition(&prom_text)
        .unwrap_or_else(|(line, e)| panic!("invalid exposition at line {line}: {e}"));
    assert!(
        prom_text.contains("distclass_checkpoint_ns"),
        "checkpoint histogram missing from dump"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// An anomalous trace (panicked peer, drifting ledger) makes
/// `trace-report` exit 2, distinct from usage errors (1).
#[test]
fn cli_trace_report_flags_anomalies_with_exit_2() {
    let dir = std::env::temp_dir().join(format!("distclass-anom-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace = dir.join("bad.jsonl");
    // Two peers minted 100 grains each; node 0 claims 70 after a +10
    // merge (drift -40), node 1 panicked.
    let lines = [
        r#"{"type":"cluster_started","nodes":2,"initial_grains":200}"#,
        r#"{"type":"grain_delta","node":0,"incarnation":0,"op":"merge","grains":10,"peer":1}"#,
        r#"{"type":"peer_final","node":0,"outcome":"completed","grains":70}"#,
        r#"{"type":"peer_final","node":1,"outcome":"panicked","grains":0}"#,
    ];
    std::fs::write(&trace, lines.join("\n")).expect("write synthetic trace");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_distclass"))
        .args(["trace-report", trace.to_str().expect("utf-8 path")])
        .output()
        .expect("spawn distclass trace-report");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(2),
        "anomalous trace must exit 2:\n{stdout}"
    );
    assert!(
        stdout.contains("ANOMAL"),
        "verdict must flag anomalies:\n{stdout}"
    );

    // Usage error (missing file) is exit 1, never 2.
    let missing = std::process::Command::new(env!("CARGO_BIN_EXE_distclass"))
        .args(["trace-report", "/nonexistent/trace.jsonl"])
        .output()
        .expect("spawn distclass trace-report");
    assert_eq!(missing.status.code(), Some(1));

    let _ = std::fs::remove_dir_all(&dir);
}
