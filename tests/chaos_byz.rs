//! Combined chaos + Byzantine sweeps: scripted crash–restarts,
//! partitions, and duplication/reordering faults running *concurrently*
//! with a colluding cartel, so the defense has to tell infrastructure
//! failure apart from malice. An honest node that restarts mid-audit
//! must never eat a strike (its new incarnation voids the probe), and a
//! cartel member must not hide behind the churn.
//!
//! Each scenario sweeps a seed matrix; set `DISTCLASS_CHAOS_BYZ_SEEDS`
//! to a comma-separated list to override the default eight seeds.

use std::sync::Arc;
use std::time::Duration;

use distclass::core::CentroidInstance;
use distclass::linalg::Vector;
use distclass::net::{NodeId, Topology};
use distclass::obs::{ByzReport, RingSink, TraceEvent, Tracer};
use distclass::runtime::{
    run_chaos_channel_cluster, AdversaryPlan, ClusterConfig, ClusterReport, DefenseConfig,
    FaultPlan, NodeOutcome,
};

fn seeds() -> Vec<u64> {
    match std::env::var("DISTCLASS_CHAOS_BYZ_SEEDS") {
        Ok(list) => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .expect("DISTCLASS_CHAOS_BYZ_SEEDS: bad seed")
            })
            .collect(),
        Err(_) => (1..=8).collect(),
    }
}

fn two_site_values(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| {
            let x = if i % 2 == 0 { 0.0 } else { 10.0 };
            Vector::from(vec![x, x])
        })
        .collect()
}

/// Runs the cluster under both a fault schedule and an adversary plan,
/// capturing the trace for offline replay.
fn run_traced(
    n: usize,
    seed: u64,
    plan: AdversaryPlan,
    faults: &FaultPlan,
) -> (ClusterReport<Vector>, Vec<TraceEvent>) {
    let sink = Arc::new(RingSink::new(1 << 20));
    let config = ClusterConfig {
        tick: Duration::from_millis(1),
        tol: 1e-6,
        stable_window: Duration::from_millis(150),
        max_wall: Duration::from_secs(30),
        drain_wall: Duration::from_secs(15),
        seed,
        audit: true,
        tracer: Tracer::new(Arc::clone(&sink) as _),
        adversaries: Some(Arc::new(plan)),
        defense: Some(DefenseConfig::default()),
        ..ClusterConfig::default()
    };
    let inst = Arc::new(CentroidInstance::new(2).expect("k >= 1"));
    let report = run_chaos_channel_cluster(
        &Topology::complete(n),
        inst,
        &two_site_values(n),
        faults,
        &config,
    );
    (report, sink.events())
}

/// The full combined contract: exactly the cast convicted (no honest
/// node swept up by the churn), honest nodes converged to agreeing
/// centroids, the books balanced to the grain, and the offline replay
/// confirming 100% detection with zero false positives.
fn assert_defended_through_chaos(
    report: &ClusterReport<Vector>,
    events: &[TraceEvent],
    adversaries: &[usize],
    label: &str,
) {
    assert_eq!(
        report.convicted, adversaries,
        "{label}: convicted set must be exactly the cast"
    );
    assert!(report.converged, "{label}: honest nodes did not converge");
    assert!(report.drained, "{label}: cluster did not drain");
    let audit = report.audit.as_ref().expect("audit was requested");
    assert!(audit.ok(), "{label}: audit failed\n{audit}");

    // Honest centroid agreement, checked directly against the final
    // classifications rather than trusting the dispersion figure.
    let honest: Vec<_> = report
        .nodes
        .iter()
        .filter(|r| r.outcome == NodeOutcome::Completed && !report.convicted.contains(&r.id))
        .collect();
    assert!(honest.len() >= 2, "{label}: too few honest survivors");
    let reference = &honest[0].classification;
    for node in &honest[1..] {
        assert_eq!(
            node.classification.len(),
            reference.len(),
            "{label}: node {} disagrees on collection count",
            node.id
        );
        for c in node.classification.iter() {
            let nearest = reference
                .iter()
                .map(|r| r.summary.distance(&c.summary))
                .fold(f64::INFINITY, f64::min);
            assert!(
                nearest < 1e-3,
                "{label}: node {} centroid {} is {nearest} from consensus",
                node.id,
                c.summary
            );
        }
    }

    let byz = ByzReport::from_events(events);
    assert!(
        byz.clean(),
        "{label}: byz-report raised anomalies: {:?}",
        byz.anomalies
    );
    assert_eq!(byz.detection_rate(), 1.0, "{label}");
    assert_eq!(byz.false_positive_rate(), 0.0, "{label}");
    assert_eq!(
        byz.summary,
        Some((audit.minted_grains, audit.rejected_frames as u64)),
        "{label}: byz_summary must mirror the grain auditor"
    );
}

/// An honest node crash–restarts while a cartel is lying about its
/// centroids. The restart voids any probe in flight against the victim
/// (a new incarnation is a new seq namespace), so the churn produces
/// zero false strikes while the cartel is still fully convicted.
#[test]
fn crash_restart_during_cartel_attack_convicts_only_the_cartel() {
    const N: usize = 12;
    let adversaries = [4usize, 9];
    for seed in seeds() {
        // A seed-dependent *honest* crash victim, so the sweep exercises
        // restarts of different auditors/audit targets.
        let honest: Vec<NodeId> = (0..N).filter(|i| !adversaries.contains(i)).collect();
        let victim = honest[seed as usize % honest.len()];
        let faults = FaultPlan::new(seed).crash_restart(
            Duration::from_millis(150),
            victim,
            Duration::from_millis(100),
        );
        let plan = AdversaryPlan::new(seed)
            .cartel(&adversaries, 1.2)
            .sigma(1.0);
        let (report, events) = run_traced(N, seed, plan, &faults);
        let label = format!("crash+cartel seed {seed} (victim {victim})");
        assert_eq!(
            report.nodes[victim].restarts, 1,
            "{label}: the victim was not respawned"
        );
        assert_defended_through_chaos(&report, &events, &adversaries, &label);
    }
}

/// The cluster partitions in half with one cartel member on each side,
/// then heals. Probes that cross the cut simply expire (silence is
/// never evidence), audits inside each island keep collecting strikes,
/// and after the heal both liars end up convicted everywhere.
#[test]
fn partition_with_a_liar_on_each_side_still_convicts_both() {
    const N: usize = 12;
    let adversaries = [4usize, 9];
    for seed in seeds() {
        let faults = FaultPlan::new(seed).partition(
            Duration::from_millis(100),
            Duration::from_millis(300),
            (0..N / 2).collect(), // 4 on the left, 9 on the right
        );
        let plan = AdversaryPlan::new(seed)
            .cartel(&adversaries, 1.2)
            .sigma(1.0);
        let (report, events) = run_traced(N, seed, plan, &faults);
        assert_defended_through_chaos(
            &report,
            &events,
            &adversaries,
            &format!("partition+cartel seed {seed}"),
        );
    }
}

/// Duplication and reordering on top of the cartel: replayed corrupted
/// frames are deduplicated rather than double-counted as evidence, and
/// the seq-keyed attestation ring is immune to delivery order, so the
/// verdict is byte-for-byte the same contract as on a clean network.
#[test]
fn dup_and_reorder_do_not_confuse_the_audit() {
    const N: usize = 12;
    let adversaries = [4usize, 9];
    for seed in seeds() {
        let faults = FaultPlan::new(seed).duplicate(0.10).reorder(0.15).delay(
            0.2,
            Duration::from_millis(1),
            Duration::from_millis(3),
        );
        let plan = AdversaryPlan::new(seed)
            .cartel(&adversaries, 1.2)
            .sigma(1.0);
        let (report, events) = run_traced(N, seed, plan, &faults);
        let label = format!("dup+reorder+cartel seed {seed}");
        assert_defended_through_chaos(&report, &events, &adversaries, &label);
        let dups = report.total_metrics().duplicates;
        assert!(dups > 0, "{label}: plan injected nothing");
    }
}
