//! End-to-end tests for the live operations console: a real chaos run
//! feeds the aggregator through the supervisor's trace path, and the
//! served `/snapshot.json` must parse with `obs::json` and reconcile
//! *exactly* with the auditor's final verdict.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use distclass::core::CentroidInstance;
use distclass::linalg::Vector;
use distclass::net::Topology;
use distclass::obs::{EpisodeRule, Json, Live, LiveAggregator, LiveConsole, Profiler, Tracer};
use distclass::runtime::{run_chaos_channel_cluster, ClusterConfig, FaultPlan};

fn two_site_values(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| {
            let x = if i % 2 == 0 { 0.0 } else { 10.0 };
            Vector::from(vec![x, x])
        })
        .collect()
}

fn http_get(addr: std::net::SocketAddr, target: &str) -> Option<(String, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let mut halves = response.splitn(2, "\r\n\r\n");
    let head = halves.next()?.to_string();
    let body = halves.next().unwrap_or_default().to_string();
    Some((head, body))
}

/// Acceptance criterion: after a crash-and-recover chaos run, the
/// console's `/snapshot.json` parses with `obs::json` and its audit
/// object equals the run's `AuditReport` field for field — the live
/// view and the offline auditor tell one story.
#[test]
fn snapshot_reconciles_exactly_with_the_final_audit() {
    const N: usize = 6;
    let agg = Arc::new(LiveAggregator::new(EpisodeRule::default()));
    let config = ClusterConfig {
        tick: Duration::from_millis(1),
        tol: 1e-9,
        stable_window: Duration::from_millis(100),
        max_wall: Duration::from_secs(30),
        drain_wall: Duration::from_secs(15),
        seed: 5,
        audit: true,
        // Feed the aggregator through the same tracer path the
        // supervisor and peers already use.
        tracer: Tracer::disabled().tee(agg.clone()),
        ..ClusterConfig::default()
    };
    let plan =
        FaultPlan::new(5).crash_restart(Duration::from_millis(120), 1, Duration::from_millis(150));
    let inst = Arc::new(CentroidInstance::new(2).expect("k >= 1"));
    let report = run_chaos_channel_cluster(
        &Topology::complete(N),
        inst,
        &two_site_values(N),
        &plan,
        &config,
    );
    let audit = report.audit.as_ref().expect("audit was requested");
    assert!(report.converged && report.drained, "{audit}");

    // Serve the aggregator the run just filled and fetch the snapshot
    // over real HTTP.
    let server = match LiveConsole::start(
        "127.0.0.1:0",
        None,
        Live::new(agg.clone()),
        Profiler::disabled(),
        None,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("skipping HTTP leg: bind failed: {e}");
            return;
        }
    };
    let (head, body) = http_get(server.local_addr(), "/snapshot.json").expect("snapshot roundtrip");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    let doc = Json::parse(&body).expect("snapshot parses with obs::json");

    // Exact reconciliation, grain for grain.
    let snap_audit = doc.get("audit").expect("audit section present");
    let get = |key: &str| snap_audit.get(key).and_then(Json::as_u64).expect(key);
    assert_eq!(get("initial"), audit.initial_grains);
    assert_eq!(get("final_grains"), audit.final_grains);
    assert_eq!(get("gains"), audit.declared_gains);
    assert_eq!(get("losses"), audit.declared_losses);
    assert_eq!(get("injected"), audit.injected_grains);
    assert_eq!(get("forgotten"), audit.forgotten_grains);
    assert_eq!(
        snap_audit.get("exact").and_then(Json::as_bool),
        Some(audit.exact)
    );
    assert_eq!(
        snap_audit.get("conserved").and_then(Json::as_bool),
        Some(audit.conserved)
    );

    // The telemetry the supervisor streamed is there, with a monotone
    // round (elapsed-ms) series and stamped wall-clock times.
    let samples = doc
        .get("samples")
        .and_then(Json::as_array)
        .expect("samples array");
    assert!(!samples.is_empty(), "supervisor telemetry reached the view");
    let rounds: Vec<u64> = samples
        .iter()
        .map(|s| s.get("round").and_then(Json::as_u64).expect("round"))
        .collect();
    assert!(
        rounds.windows(2).all(|w| w[0] <= w[1]),
        "round series must be monotone: {rounds:?}"
    );
    assert!(
        samples
            .iter()
            .all(|s| s.get("unix_ms").and_then(Json::as_u64).is_some()),
        "runtime samples carry wall-clock stamps"
    );

    // The crash-and-recover run moved grains: the running checkpoint
    // totals are live (merged frames were durably checkpointed).
    let running = doc.get("audit_running").expect("running totals");
    assert!(
        running
            .get("merged")
            .and_then(Json::as_u64)
            .expect("merged")
            > 0,
        "durable checkpoints reached the live view"
    );
}

/// The `--dash-listen` wiring end to end: a cluster run with the flag's
/// config field set serves the dashboard, metrics and snapshot *while*
/// the run is in flight.
#[test]
fn dash_listen_serves_the_console_during_a_run() {
    const N: usize = 6;
    // Reserve an ephemeral port, then hand it to the cluster. (The bound
    // address lives inside the supervisor, so port 0 would be unknowable
    // from out here.)
    let addr = match TcpListener::bind("127.0.0.1:0") {
        Ok(probe) => {
            let addr = probe.local_addr().expect("probe addr");
            drop(probe);
            addr
        }
        Err(e) => {
            eprintln!("skipping dash-listen test: no loopback TCP: {e}");
            return;
        }
    };
    let config = ClusterConfig {
        tick: Duration::from_millis(1),
        tol: 1e-9,
        // A generous stable window keeps the run alive long enough for
        // the poller to catch it mid-flight.
        stable_window: Duration::from_millis(1_500),
        max_wall: Duration::from_secs(30),
        drain_wall: Duration::from_secs(15),
        seed: 7,
        audit: true,
        dash_listen: Some(addr.to_string()),
        ..ClusterConfig::default()
    };
    let runner = thread::spawn(move || {
        let inst = Arc::new(CentroidInstance::new(2).expect("k >= 1"));
        run_chaos_channel_cluster(
            &Topology::complete(N),
            inst,
            &two_site_values(N),
            &FaultPlan::new(7),
            &config,
        )
    });

    // Poll until the console answers (the supervisor binds it early).
    let mut dashboard = None;
    for _ in 0..100 {
        if let Some((head, body)) = http_get(addr, "/") {
            dashboard = Some((head, body));
            break;
        }
        thread::sleep(Duration::from_millis(20));
    }
    let (head, body) = dashboard.expect("console came up during the run");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(body.contains("distclass live console"));

    // Snapshot parses mid-run; wait until telemetry starts flowing.
    let mut saw_samples = false;
    for _ in 0..100 {
        let Some((head, body)) = http_get(addr, "/snapshot.json") else {
            break; // run (and console) already over
        };
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let doc = Json::parse(&body).expect("snapshot parses mid-run");
        if doc.get("sample_count").and_then(Json::as_u64).unwrap_or(0) > 0 {
            saw_samples = true;
            break;
        }
        thread::sleep(Duration::from_millis(20));
    }
    assert!(saw_samples, "telemetry samples appeared while running");

    let report = runner.join().expect("cluster thread");
    let audit = report.audit.as_ref().expect("audit was requested");
    assert!(report.converged && report.drained && audit.ok(), "{audit}");
}
