//! End-to-end chaos tests for the deployment runtime: scripted
//! partitions, crash–restart recovery, duplication and reordering, with
//! the grain-conservation auditor checking the books after every run.
//!
//! Each scenario sweeps a seed matrix; set `DISTCLASS_CHAOS_SEEDS` to a
//! comma-separated list (e.g. `DISTCLASS_CHAOS_SEEDS=3` in a CI matrix
//! job) to override the default eight seeds.

use std::io;
use std::sync::Arc;
use std::time::Duration;

use distclass::core::CentroidInstance;
use distclass::linalg::Vector;
use distclass::net::{NodeId, Topology};
use distclass::runtime::{
    run_chaos_channel_cluster, run_cluster, ChannelNet, ClusterConfig, ClusterReport, FaultPlan,
    NodeOutcome, Transport,
};

fn seeds() -> Vec<u64> {
    match std::env::var("DISTCLASS_CHAOS_SEEDS") {
        Ok(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("DISTCLASS_CHAOS_SEEDS: bad seed"))
            .collect(),
        Err(_) => (1..=8).collect(),
    }
}

fn two_site_values(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| {
            let x = if i % 2 == 0 { 0.0 } else { 10.0 };
            Vector::from(vec![x, x])
        })
        .collect()
}

fn config(seed: u64) -> ClusterConfig {
    ClusterConfig {
        tick: Duration::from_millis(1),
        tol: 1e-9,
        stable_window: Duration::from_millis(100),
        max_wall: Duration::from_secs(30),
        drain_wall: Duration::from_secs(15),
        seed,
        audit: true,
        ..ClusterConfig::default()
    }
}

fn run(n: usize, plan: &FaultPlan, config: &ClusterConfig) -> ClusterReport<Vector> {
    let inst = Arc::new(CentroidInstance::new(2).expect("k >= 1"));
    run_chaos_channel_cluster(
        &Topology::complete(n),
        inst,
        &two_site_values(n),
        plan,
        config,
    )
}

fn assert_books_balance(report: &ClusterReport<Vector>, label: &str) {
    let audit = report.audit.as_ref().expect("audit was requested");
    assert!(report.converged, "{label}: did not converge\n{audit}");
    assert!(report.drained, "{label}: did not drain\n{audit}");
    assert!(audit.ok(), "{label}: audit failed\n{audit}");
}

/// Scenario 1: the cluster splits in half, heals, and still converges
/// with every grain where the ledger says it should be. No crashes, so
/// the live total equals the initial total exactly.
#[test]
fn partition_heal_conserves_grains_across_seeds() {
    const N: usize = 8;
    for seed in seeds() {
        let plan = FaultPlan::new(seed).partition(
            Duration::from_millis(100),
            Duration::from_millis(300),
            (0..N / 2).collect(),
        );
        let config = config(seed);
        let report = run(N, &plan, &config);
        assert_books_balance(&report, &format!("partition-heal seed {seed}"));
        assert_eq!(
            report.total_grains(),
            N as u64 * config.quantum.grains_per_unit(),
            "partition-heal seed {seed}: grains lost without any crash"
        );
    }
}

/// Scenario 2: two peers crash mid-run and are respawned from their
/// checkpoints; the audit proves conservation modulo the declared
/// rollback gains/losses of each restart.
#[test]
fn crash_restart_recovers_and_balances_across_seeds() {
    const N: usize = 8;
    for seed in seeds() {
        // Seed-dependent victims so the sweep exercises different nodes.
        let a = (seed % N as u64) as NodeId;
        let b = ((seed + 3) % N as u64) as NodeId;
        let mut plan = FaultPlan::new(seed).crash_restart(
            Duration::from_millis(150),
            a,
            Duration::from_millis(100),
        );
        if b != a {
            plan = plan.crash_restart(Duration::from_millis(250), b, Duration::from_millis(100));
        }
        let report = run(N, &plan, &config(seed));
        assert_books_balance(&report, &format!("crash-restart seed {seed}"));
        assert_eq!(
            report.nodes[a].restarts, 1,
            "crash-restart seed {seed}: node {a} was not respawned"
        );
        assert!(
            report
                .nodes
                .iter()
                .all(|r| r.outcome == NodeOutcome::Completed),
            "crash-restart seed {seed}: a node did not complete"
        );
    }
}

/// Scenario 3: heavy duplication + reordering + random extra delay. The
/// reliability layer dedups and retries through all of it; nothing is
/// ever lost, so conservation is exact with zero declared events.
#[test]
fn dup_and_reorder_never_lose_or_mint_grains_across_seeds() {
    const N: usize = 8;
    for seed in seeds() {
        let plan = FaultPlan::new(seed).duplicate(0.10).reorder(0.15).delay(
            0.2,
            Duration::from_millis(1),
            Duration::from_millis(3),
        );
        let config = config(seed);
        let report = run(N, &plan, &config);
        assert_books_balance(&report, &format!("dup+reorder seed {seed}"));
        let audit = report.audit.as_ref().expect("audit was requested");
        assert_eq!(
            audit.declared_gains + audit.declared_losses,
            0,
            "dup+reorder seed {seed}: no crash, so nothing may be declared"
        );
        assert_eq!(
            report.total_grains(),
            N as u64 * config.quantum.grains_per_unit(),
            "dup+reorder seed {seed}: duplication minted or lost grains"
        );
        let dups = report.total_metrics().duplicates;
        assert!(dups > 0, "dup+reorder seed {seed}: plan injected nothing");
    }
}

/// The acceptance scenario: a 16-peer cluster survives a scripted
/// partition-heal plus two crash–restart events and converges, with the
/// auditor proving grain conservation, on every seed of the matrix.
#[test]
fn sixteen_peers_survive_partition_and_two_crash_restarts() {
    const N: usize = 16;
    for seed in seeds() {
        let plan = FaultPlan::new(seed)
            .partition(
                Duration::from_millis(150),
                Duration::from_millis(450),
                (0..N / 2).collect(),
            )
            .crash_restart(Duration::from_millis(250), 3, Duration::from_millis(150))
            .crash_restart(Duration::from_millis(350), 11, Duration::from_millis(150));
        let report = run(N, &plan, &config(seed));
        assert_books_balance(&report, &format!("flagship seed {seed}"));
        assert_eq!(report.nodes[3].restarts, 1, "flagship seed {seed}");
        assert_eq!(report.nodes[11].restarts, 1, "flagship seed {seed}");
    }
}

/// A permanent crash takes its grains with it — and the audit *declares*
/// that loss rather than hiding it: `final = initial − losses`, exactly.
#[test]
fn permanent_crash_is_a_declared_nonzero_loss() {
    const N: usize = 8;
    let seed = 5;
    let plan = FaultPlan::new(seed).crash(Duration::from_millis(200), 5);
    let report = run(N, &plan, &config(seed));
    let audit = report.audit.as_ref().expect("audit was requested");
    assert_eq!(report.nodes[5].outcome, NodeOutcome::Dead);
    assert!(audit.exact, "death receipts keep the accounting exact");
    assert!(audit.conserved, "audit must balance:\n{audit}");
    assert!(
        audit.declared_losses > 0,
        "a node died holding grains; the loss must be declared:\n{audit}"
    );
    assert_eq!(
        audit.final_grains as i128,
        audit.initial_grains as i128 + audit.declared_gains as i128 - audit.declared_losses as i128,
        "conservation identity:\n{audit}"
    );
}

/// Determinism: the same spec and seed parse to byte-identical fault
/// schedules (equal plans, equal digests); a different seed diverges.
#[test]
fn fault_schedules_are_byte_identical_in_spec_and_seed() {
    let spec =
        "partition@100ms-300ms:0-3;crash@150ms:2+100ms;dup=0.1;reorder=0.2;delay=0.3:1ms-4ms";
    let a = FaultPlan::parse(spec, 17).expect("spec parses");
    let b = FaultPlan::parse(spec, 17).expect("spec parses");
    assert_eq!(a, b);
    assert_eq!(a.digest(), b.digest());
    let c = FaultPlan::parse(spec, 18).expect("spec parses");
    assert_ne!(a.digest(), c.digest(), "seed must be part of the schedule");
}

/// A transport that works for a while, then panics its peer thread —
/// a genuine bug, not an injected `Ctrl::Crash`.
struct PanicAfter<T> {
    inner: T,
    sends_left: u32,
}

impl<T: Transport> Transport for PanicAfter<T> {
    fn send(&mut self, to: NodeId, frame: &[u8]) -> io::Result<()> {
        assert!(self.sends_left > 0, "injected transport failure");
        self.sends_left -= 1;
        self.inner.send(to, frame)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Vec<u8>>> {
        self.inner.recv_timeout(timeout)
    }
}

/// A peer thread panic must not take the harness down: the supervisor
/// captures the payload as that node's error and reports the node as
/// `Panicked` while every other node still completes and reports.
#[test]
fn peer_panic_is_captured_as_a_per_node_error() {
    const N: usize = 4;
    let transports: Vec<PanicAfter<_>> = ChannelNet::reliable(N)
        .into_iter()
        .enumerate()
        .map(|(id, inner)| PanicAfter {
            inner,
            sends_left: if id == 2 { 5 } else { u32::MAX },
        })
        .collect();
    let inst = Arc::new(CentroidInstance::new(2).expect("k >= 1"));
    let config = ClusterConfig {
        tick: Duration::from_millis(1),
        tol: 1e-9,
        stable_window: Duration::from_millis(100),
        max_wall: Duration::from_secs(5),
        drain_wall: Duration::from_secs(3),
        seed: 9,
        ..ClusterConfig::default()
    };
    let report = run_cluster(
        &Topology::complete(N),
        inst,
        &two_site_values(N),
        transports,
        &config,
    );
    let victim = &report.nodes[2];
    assert_eq!(victim.outcome, NodeOutcome::Panicked);
    assert!(
        victim
            .error
            .as_deref()
            .is_some_and(|e| e.contains("injected transport failure")),
        "panic payload must be captured, got {:?}",
        victim.error
    );
    for other in report.nodes.iter().filter(|r| r.id != 2) {
        assert_eq!(
            other.outcome,
            NodeOutcome::Completed,
            "node {} should have outlived the panic",
            other.id
        );
    }
}
