//! `run-cluster` flag hygiene: contradictory or vacuous flag
//! combinations must die with a clear usage error before any peer is
//! spawned, not start a run with surprising defaults.

use std::process::Command;

fn run_cluster(extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_distclass"))
        .arg("run-cluster")
        .args(extra)
        .output()
        .expect("spawn distclass")
}

#[test]
fn defense_and_no_defense_together_is_an_error() {
    let out = run_cluster(&["--defense", "--no-defense"]);
    assert_eq!(out.status.code(), Some(1), "must exit 1 on a usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--defense and --no-defense contradict each other"),
        "unclear error:\n{stderr}"
    );
}

#[test]
fn empty_plan_specs_are_errors() {
    for flag in ["--faults", "--drift", "--churn"] {
        // Both the bare flag and an explicit empty spec are vacuous.
        for extra in [vec![flag], vec![flag, ""]] {
            let out = run_cluster(&extra);
            assert_eq!(
                out.status.code(),
                Some(1),
                "{flag} with an empty spec must exit 1"
            );
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(
                stderr.contains(&format!("{flag} needs a non-empty spec")),
                "unclear error for {flag}:\n{stderr}"
            );
        }
    }
}

#[test]
fn bad_churn_join_ids_are_spec_errors_not_panics() {
    // Join id 12 on an 8-node cluster: not contiguous from 8.
    let out = run_cluster(&[
        "--transport",
        "channel",
        "--n",
        "8",
        "--churn",
        "join@100ms:12=1.0,1.0",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("contiguous from 8"),
        "unclear error:\n{stderr}"
    );

    // Leaving a node that never exists is equally a spec error.
    let out = run_cluster(&[
        "--transport",
        "channel",
        "--n",
        "8",
        "--churn",
        "leave@100ms:99",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown node 99"),
        "unclear error:\n{stderr}"
    );
}
