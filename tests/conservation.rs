//! Exact weight-conservation tests: the quantized-weight design means the
//! total weight in the system (node states + in-flight messages) is the
//! number of inputs, to the grain, at every instant — unless crashes
//! destroy weight, in which case it only ever decreases.

use std::sync::Arc;

use distclass::core::{CentroidInstance, GmInstance, Quantum};
use distclass::gossip::{AsyncSim, GossipConfig, RoundSim};
use distclass::linalg::Vector;
use distclass::net::{CrashModel, DelayModel, Topology};

fn values(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| Vector::from([i as f64, -(i as f64)]))
        .collect()
}

#[test]
fn round_sim_conserves_every_grain_every_round() {
    let n = 20;
    let q = Quantum::new(1 << 10);
    let cfg = GossipConfig {
        quantum: q,
        ..GossipConfig::default()
    };
    let inst = Arc::new(GmInstance::new(3).expect("k = 3 is valid"));
    let mut sim = RoundSim::new(Topology::ring(n), inst, &values(n), &cfg);
    let expected = n as u64 * q.grains_per_unit();
    for round in 0..100 {
        sim.run_round();
        assert_eq!(
            sim.total_live_weight().grains(),
            expected,
            "leak at round {round}"
        );
    }
}

#[test]
fn async_sim_conserves_after_drain() {
    let n = 15;
    let q = Quantum::new(1 << 10);
    let cfg = GossipConfig {
        quantum: q,
        ..GossipConfig::default()
    };
    let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
    let mut sim = AsyncSim::new(
        Topology::complete(n),
        inst,
        &values(n),
        &cfg,
        DelayModel::Exponential { mean: 1.5 },
    );
    for t in [10.0, 50.0, 120.0] {
        sim.run_until(t);
    }
    sim.drain_in_flight();
    assert_eq!(
        sim.total_node_weight().grains(),
        n as u64 * q.grains_per_unit()
    );
}

#[test]
fn crashes_only_ever_destroy_weight() {
    let n = 30;
    let q = Quantum::new(1 << 10);
    let cfg = GossipConfig {
        quantum: q,
        crash: CrashModel::per_round(0.05),
        ..GossipConfig::default()
    };
    let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(Topology::complete(n), inst, &values(n), &cfg);
    let mut previous = n as u64 * q.grains_per_unit();
    for _ in 0..50 {
        sim.run_round();
        let now = sim.total_live_weight().grains();
        assert!(now <= previous, "weight increased: {previous} -> {now}");
        previous = now;
    }
    assert!(sim.live_count() < n, "nobody crashed in 50 rounds");
    assert!(previous > 0);
}

#[test]
fn scheduled_crash_loses_exactly_the_victims_weight() {
    let n = 8;
    let q = Quantum::new(1 << 6);
    // Crash node 3 after round 5 (no other faults).
    let cfg = GossipConfig {
        quantum: q,
        crash: CrashModel::Scheduled(vec![(5, 3)]),
        ..GossipConfig::default()
    };
    let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(Topology::complete(n), inst, &values(n), &cfg);
    for _ in 0..5 {
        sim.run_round();
    }
    let before = sim.total_live_weight().grains();
    assert_eq!(before, n as u64 * q.grains_per_unit());
    let victim_weight = sim.classification_of(3).total_weight().grains();
    sim.run_round(); // node 3 crashes at the end of this round
    assert!(!sim.live_nodes().contains(&3));
    // The weight node 3 held at the instant of the crash is gone; nothing
    // else is. (Node 3's holdings changed during round 6, so bound the
    // loss by sanity rather than equality.)
    let after = sim.total_live_weight().grains();
    assert!(after < before);
    assert!(
        before - after <= 2 * victim_weight.max(q.grains_per_unit()),
        "lost {} grains, victim held {victim_weight}",
        before - after
    );
}

#[test]
fn no_weight_is_created_from_empty_sends() {
    // A 2-node network where one node's weight collapses to one grain:
    // splits send nothing, weight never changes.
    let q = Quantum::new(2);
    let cfg = GossipConfig {
        quantum: q,
        ..GossipConfig::default()
    };
    let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(Topology::ring(2), inst, &values(2), &cfg);
    for _ in 0..20 {
        sim.run_round();
        assert_eq!(sim.total_live_weight().grains(), 4);
    }
}
