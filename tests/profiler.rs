//! End-to-end phase-profiler checks over the chaos matrix: on every
//! seed, the snapshot taken at quiesce must satisfy the accounting
//! identities exactly (per-thread `busy == Σ self`, `busy + idle_wait ==
//! lifetime`), the `distclass_phase_us` registry families must reconcile
//! against the profile tree to the microsecond, and the collapsed-stack
//! export must round-trip through its parser.
//!
//! Each scenario sweeps a seed matrix; set `DISTCLASS_CHAOS_SEEDS` to a
//! comma-separated list (e.g. `DISTCLASS_CHAOS_SEEDS=3` in a CI matrix
//! job) to override the default.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use distclass::core::CentroidInstance;
use distclass::linalg::Vector;
use distclass::net::Topology;
use distclass::obs::{
    MetricValue, Metrics, MetricsRegistry, Phase, ProfileReport, Profiler, ProfilerCore,
};
use distclass::runtime::{run_chaos_channel_cluster, ClusterConfig, ClusterReport, FaultPlan};

fn seeds() -> Vec<u64> {
    match std::env::var("DISTCLASS_CHAOS_SEEDS") {
        Ok(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("DISTCLASS_CHAOS_SEEDS: bad seed"))
            .collect(),
        Err(_) => (1..=4).collect(),
    }
}

fn two_site_values(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| {
            let x = if i % 2 == 0 { 0.0 } else { 10.0 };
            Vector::from(vec![x, x])
        })
        .collect()
}

/// A chaos run (partition-heal plus a crash–restart) with the profiler
/// attached — respawns exercise the label-dedup path too.
fn profiled_run(
    seed: u64,
) -> (
    ClusterReport<Vector>,
    Arc<ProfilerCore>,
    Arc<MetricsRegistry>,
) {
    const N: usize = 6;
    let registry = Arc::new(MetricsRegistry::new());
    let core = Arc::new(ProfilerCore::with_metrics(Metrics::new(Arc::clone(
        &registry,
    ))));
    let config = ClusterConfig {
        tick: Duration::from_millis(1),
        tol: 1e-9,
        stable_window: Duration::from_millis(100),
        max_wall: Duration::from_secs(30),
        drain_wall: Duration::from_secs(15),
        seed,
        audit: true,
        metrics: Metrics::new(Arc::clone(&registry)),
        profiler: Profiler::new(Arc::clone(&core)),
        ..ClusterConfig::default()
    };
    let plan = FaultPlan::new(seed)
        .partition(
            Duration::from_millis(100),
            Duration::from_millis(250),
            (0..N / 2).collect(),
        )
        .crash_restart(
            Duration::from_millis(150),
            (seed % N as u64) as usize,
            Duration::from_millis(100),
        );
    let inst = Arc::new(CentroidInstance::new(2).expect("k >= 1"));
    let report = run_chaos_channel_cluster(
        &Topology::complete(N),
        inst,
        &two_site_values(N),
        &plan,
        &config,
    );
    (report, core, registry)
}

/// The tentpole acceptance check: on every seed of the matrix the
/// quiesce-time snapshot is anomaly-free — every thread finalized with
/// no unclosed spans, and both identities hold exactly by construction.
#[test]
fn profile_identities_hold_on_every_chaos_seed() {
    for seed in seeds() {
        let (report, _core, _registry) = profiled_run(seed);
        assert!(report.converged, "seed {seed}: did not converge");
        let profile = report.profile.as_ref().expect("profiler was attached");
        assert!(
            profile.clean(),
            "seed {seed}: profile anomalies: {:?}",
            profile.anomalies()
        );
        for t in &profile.threads {
            let top_sum: u64 = t
                .spans
                .iter()
                .filter(|s| s.path.len() == 1)
                .map(|s| s.total_ns)
                .sum();
            assert_eq!(
                t.busy_ns + t.idle_wait_ns,
                t.lifetime_ns,
                "seed {seed}, thread {}: lifetime identity",
                t.label
            );
            assert_eq!(
                top_sum + t.residual_ns,
                t.lifetime_ns,
                "seed {seed}, thread {}: span tree covers the lifetime",
                t.label
            );
        }
        // The respawned incarnation registers under a deduped label.
        let victim = (seed % 6) as usize;
        let respawn = format!("peer{victim}#1");
        assert!(
            profile.threads.iter().any(|t| t.label == respawn),
            "seed {seed}: respawned incarnation {respawn} missing from {:?}",
            profile.threads.iter().map(|t| &t.label).collect::<Vec<_>>()
        );
    }
}

/// Registry reconciliation: for every (thread, phase) series in the
/// `distclass_phase_us` family, the histogram's count and sum equal the
/// profile tree's aggregate for that thread and phase — same
/// measurement, two views, zero drift.
#[test]
fn phase_histograms_reconcile_with_profile_tree_exactly() {
    for seed in seeds() {
        let (report, _core, registry) = profiled_run(seed);
        let profile = report.profile.as_ref().expect("profiler was attached");
        let mut expected: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
        for t in &profile.threads {
            for p in &t.phases {
                expected.insert(
                    (t.label.clone(), p.phase.as_str().to_string()),
                    (p.count, p.total_us),
                );
            }
        }
        let snap = registry.snapshot();
        let fam = snap
            .families
            .iter()
            .find(|f| f.name == "distclass_phase_us")
            .expect("phase family registered");
        let mut seen = 0usize;
        for series in &fam.series {
            let get = |key: &str| {
                series
                    .labels
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone())
                    .expect("labelled series")
            };
            let key = (get("thread"), get("phase"));
            let MetricValue::Histogram(h) = &series.value else {
                panic!("phase series is not a histogram");
            };
            let (count, total_us) = expected
                .get(&key)
                .unwrap_or_else(|| panic!("seed {seed}: registry has extra series {key:?}"));
            assert_eq!(h.count, *count, "seed {seed}: count mismatch for {key:?}");
            assert_eq!(h.sum, *total_us, "seed {seed}: µs sum mismatch for {key:?}");
            seen += 1;
        }
        assert_eq!(
            seen,
            expected.len(),
            "seed {seed}: every profile phase appears in the registry"
        );
    }
}

/// The collapsed-stack export round-trips through its parser, covers
/// every thread, and sums to ≈ the cluster's total thread lifetime
/// (each line carries self-µs; the residual is folded into idle_wait).
#[test]
fn collapsed_stacks_round_trip_and_cover_lifetimes() {
    let (report, _core, _registry) = profiled_run(1);
    let profile = report.profile.as_ref().expect("profiler was attached");
    let text = profile.to_collapsed();
    assert!(!text.is_empty(), "collapsed export is non-empty");
    let parsed = ProfileReport::parse_collapsed(&text).expect("parses back");
    assert_eq!(parsed, profile.collapsed_stacks(), "lossless round trip");
    for t in &profile.threads {
        let total_us: u64 = parsed
            .iter()
            .filter(|s| s.thread == t.label)
            .map(|s| s.self_us)
            .sum();
        let lifetime_us = t.lifetime_ns / 1_000;
        // Each span instance loses < 1 µs to flooring, so the folded
        // total can undershoot the lifetime by at most one µs per
        // recorded span (+1 for the lifetime's own flooring).
        let max_loss = t.spans.iter().map(|s| s.count).sum::<u64>() + 1;
        assert!(
            total_us <= lifetime_us && lifetime_us - total_us <= max_loss,
            "thread {}: folded {total_us} µs vs lifetime {lifetime_us} µs (allowed loss {max_loss})",
            t.label
        );
    }
    // Every line mentions a known phase taxonomy entry.
    for stack in &parsed {
        for p in &stack.path {
            assert!(Phase::ALL.contains(p));
        }
    }
}
