//! Dynamic-workload sweeps: sensor drift, join/leave churn, and
//! continuous re-classification.
//!
//! A static run converges once and stops. These scenarios keep the world
//! moving — half the sensors step to a new reading mid-run, a brand-new
//! peer joins with fresh mass, an old peer retires and hands its grains
//! off — and assert the two properties that make dynamics trustworthy:
//!
//! 1. **Re-convergence**: the cluster settles again on the *new*
//!    centroids, and the offline [`DynReport`] replay confirms the
//!    converged → perturbed → re-converged episode timeline.
//! 2. **Exact accounting**: every grain of injected and forgotten mass
//!    is declared, so the auditor's books balance to the grain through
//!    drift, joins and retirement handoffs
//!    (`final = initial + gains + injected − losses − forgotten`).
//!
//! Each scenario sweeps a seed matrix; set `DISTCLASS_DYN_SEEDS` to a
//! comma-separated list to override the default eight seeds.

use std::sync::Arc;
use std::time::Duration;

use distclass::core::CentroidInstance;
use distclass::linalg::Vector;
use distclass::net::Topology;
use distclass::obs::{DynOptions, DynReport, RingSink, Tracer};
use distclass::runtime::{
    run_channel_cluster, run_chaos_channel_cluster, AdversaryPlan, ChurnPlan, ClusterConfig,
    ClusterReport, DefenseConfig, DriftSchedule, FaultPlan, NodeOutcome,
};

fn seeds() -> Vec<u64> {
    match std::env::var("DISTCLASS_DYN_SEEDS") {
        Ok(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("DISTCLASS_DYN_SEEDS: bad seed"))
            .collect(),
        Err(_) => (1..=8).collect(),
    }
}

fn two_site_values(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| {
            let x = if i % 2 == 0 { 0.0 } else { 10.0 };
            Vector::from(vec![x, x])
        })
        .collect()
}

/// Grain-weighted mean of the first coordinate across every completed
/// node's final classification — the crudest possible summary of where
/// the cluster thinks the data lives, used to prove the drift actually
/// moved the answer.
fn grand_mean_x(report: &ClusterReport<Vector>) -> f64 {
    let mut grains = 0u128;
    let mut sum = 0.0;
    for node in report
        .nodes
        .iter()
        .filter(|r| r.outcome == NodeOutcome::Completed)
    {
        for c in node.classification.iter() {
            let g = c.weight.grains();
            grains += u128::from(g);
            sum += g as f64 * c.summary[0];
        }
    }
    assert!(grains > 0, "no completed node holds any mass");
    sum / grains as f64
}

/// Every pair of completed, unconvicted nodes must agree on the final
/// centroid set to within `tol` (nearest-centroid matching).
fn assert_centroid_agreement(report: &ClusterReport<Vector>, tol: f64, label: &str) {
    let honest: Vec<_> = report
        .nodes
        .iter()
        .filter(|r| r.outcome == NodeOutcome::Completed && !report.convicted.contains(&r.id))
        .collect();
    assert!(honest.len() >= 2, "{label}: too few completed survivors");
    let reference = &honest[0].classification;
    for node in &honest[1..] {
        assert_eq!(
            node.classification.len(),
            reference.len(),
            "{label}: node {} disagrees on collection count",
            node.id
        );
        for c in node.classification.iter() {
            let nearest = reference
                .iter()
                .map(|r| r.summary.distance(&c.summary))
                .fold(f64::INFINITY, f64::min);
            assert!(
                nearest < tol,
                "{label}: node {} centroid {} is {nearest} from consensus",
                node.id,
                c.summary
            );
        }
    }
}

/// The tentpole sweep: four sensors step from their old site to (9, 9)
/// at 300 ms, a ninth peer joins at 250 ms with a reading of its own,
/// and peer 2 retires at 450 ms, handing its grains to a neighbor. The
/// cluster must settle on the *new* mixture, the auditor must balance
/// exactly through the injected/forgotten/handoff terms, and the offline
/// `dyn-report` replay must come back clean.
#[test]
fn drift_and_churn_reconverge_and_balance_exactly() {
    for seed in seeds() {
        let n = 8;
        let label = format!("seed {seed}");
        let drift = DriftSchedule::parse("step@300ms:0-3=9.0,9.0", seed).expect("drift spec");
        let churn =
            ChurnPlan::parse("join@250ms:8=4.0,4.0;leave@450ms:2", seed).expect("churn spec");
        let sink = Arc::new(RingSink::new(1 << 20));
        let config = ClusterConfig {
            tick: Duration::from_millis(1),
            tol: 1e-6,
            stable_window: Duration::from_millis(150),
            max_wall: Duration::from_secs(30),
            drain_wall: Duration::from_secs(15),
            seed,
            audit: true,
            tracer: Tracer::new(Arc::clone(&sink) as _),
            drift: Some(Arc::new(drift)),
            churn: Some(Arc::new(churn)),
            ..ClusterConfig::default()
        };
        let inst = Arc::new(CentroidInstance::new(2).expect("k >= 1"));
        let report =
            run_channel_cluster(&Topology::complete(n), inst, &two_site_values(n), &config);

        assert!(report.converged, "{label}: cluster did not re-converge");
        assert!(report.drained, "{label}: cluster did not drain");
        assert_centroid_agreement(&report, 1e-3, &label);

        // The drift must have *moved* the answer: four units of fresh
        // mass at (9, 9) pull the grand mean well above the static
        // mixture's ~4.9 (8 seed units at mean 5 plus one join unit at
        // 4, halved old mass on the drifted nodes).
        let mean_x = grand_mean_x(&report);
        assert!(
            mean_x > 5.5,
            "{label}: grand mean x = {mean_x}, drift to (9,9) did not register"
        );

        // Exact books through injection, decay and the handoff.
        let audit = report.audit.as_ref().expect("audit was requested");
        assert!(audit.ok(), "{label}: audit failed\n{audit}");
        assert!(
            audit.exact,
            "{label}: dynamic books must balance exactly\n{audit}"
        );
        let gpu = config.quantum.grains_per_unit();
        assert_eq!(
            audit.injected_grains,
            5 * gpu,
            "{label}: 4 drift re-reads + 1 join unit, one unit each"
        );
        assert!(
            audit.forgotten_grains > 0,
            "{label}: decay must have forgotten mass"
        );

        // The retiree handed everything off; the joiner ended with mass.
        assert_eq!(
            report.nodes[2].outcome,
            NodeOutcome::Retired,
            "{label}: peer 2 was scheduled to retire"
        );
        assert_eq!(
            report.nodes[2].classification.total_weight().grains(),
            0,
            "{label}: a retiree must leave no grains behind"
        );
        assert_eq!(
            report.nodes[8].outcome,
            NodeOutcome::Completed,
            "{label}: the joiner must live to the end"
        );
        assert!(
            report.nodes[8].classification.total_weight().grains() > 0,
            "{label}: the joiner must hold mass at shutdown"
        );

        // And the offline replay agrees: a settled episode timeline that
        // holds to the end, reconciled against the auditor.
        let dyn_report = DynReport::from_events(&sink.events(), &DynOptions::default());
        assert!(
            dyn_report.clean(),
            "{label}: dyn-report anomalies: {:?}",
            dyn_report.anomalies
        );
        assert!(
            !dyn_report.episodes.is_empty(),
            "{label}: no settled episode in the telemetry"
        );
        assert!(
            dyn_report
                .episodes
                .last()
                .expect("non-empty")
                .lost_round
                .is_none(),
            "{label}: the final episode must hold to the end"
        );
        assert_eq!(dyn_report.joins.len(), 1, "{label}");
        assert_eq!(dyn_report.retirements.len(), 1, "{label}");
    }
}

/// Drift, a partition and a colluding cartel in one run: the defense
/// must tell scripted sensor drift (honest, declared) apart from wire
/// lies (malicious), convicting exactly the cast while the honest
/// majority re-converges on agreeing centroids and the books balance.
#[test]
fn drift_partition_cartel_zero_false_convictions() {
    for seed in seeds() {
        let n = 14;
        let cast = [4usize, 11];
        let label = format!("seed {seed}");
        let plan = AdversaryPlan::new(seed).cartel(&cast, 1.2);
        let faults = FaultPlan::new(seed).partition(
            Duration::from_millis(150),
            Duration::from_millis(350),
            (0..n / 2).collect(),
        );
        let drift = DriftSchedule::parse("step@450ms:0-5=9.0,9.0", seed).expect("drift spec");
        let sink = Arc::new(RingSink::new(1 << 20));
        let config = ClusterConfig {
            tick: Duration::from_millis(1),
            tol: 1e-6,
            stable_window: Duration::from_millis(150),
            max_wall: Duration::from_secs(30),
            drain_wall: Duration::from_secs(15),
            seed,
            audit: true,
            tracer: Tracer::new(Arc::clone(&sink) as _),
            adversaries: Some(Arc::new(plan)),
            defense: Some(DefenseConfig::default()),
            drift: Some(Arc::new(drift)),
            ..ClusterConfig::default()
        };
        let inst = Arc::new(CentroidInstance::new(2).expect("k >= 1"));
        let report = run_chaos_channel_cluster(
            &Topology::complete(n),
            inst,
            &two_site_values(n),
            &faults,
            &config,
        );

        // Zero false convictions: nobody honest swept up by drift or the
        // partition churn.
        for &convicted in &report.convicted {
            assert!(
                cast.contains(&convicted),
                "{label}: honest node {convicted} was falsely convicted"
            );
        }
        assert_eq!(
            report.convicted, cast,
            "{label}: the cartel must still be fully convicted under drift"
        );
        assert!(report.converged, "{label}: honest nodes did not converge");
        assert_centroid_agreement(&report, 1e-3, &label);
        let audit = report.audit.as_ref().expect("audit was requested");
        assert!(audit.ok(), "{label}: audit failed\n{audit}");
        assert_eq!(
            audit.injected_grains,
            6 * config.quantum.grains_per_unit(),
            "{label}: six drifting sensors, one unit each"
        );

        let dyn_report = DynReport::from_events(&sink.events(), &DynOptions::default());
        assert!(
            dyn_report.clean(),
            "{label}: dyn-report anomalies: {:?}",
            dyn_report.anomalies
        );
    }
}

/// End-to-end CLI contract: a dynamic run traced through the binary
/// must gate clean — `dyn-report` exits 0 on its own trace and reports
/// the join, the retirement and the reconciled injection terms.
#[test]
fn cli_dyn_report_gates_a_clean_dynamic_run() {
    let dir = std::env::temp_dir().join(format!("distclass-dyn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace = dir.join("dyn.jsonl");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_distclass"))
        .args([
            "run-cluster",
            "--transport",
            "channel",
            "--n",
            "8",
            "--tick-ms",
            "1",
            "--max-secs",
            "20",
            "--seed",
            "11",
            "--drift",
            "step@300ms:0-3=9.0,9.0",
            "--churn",
            "join@250ms:8=4.0,4.0;leave@450ms:2",
            "--trace",
            trace.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("spawn distclass run-cluster");
    assert!(
        out.status.success(),
        "run-cluster failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    let report = std::process::Command::new(env!("CARGO_BIN_EXE_distclass"))
        .args(["dyn-report", trace.to_str().expect("utf-8 path")])
        .output()
        .expect("spawn distclass dyn-report");
    let stdout = String::from_utf8_lossy(&report.stdout);
    assert_eq!(
        report.status.code(),
        Some(0),
        "dyn-report on a clean dynamic run must exit 0:\n{stdout}\n{}",
        String::from_utf8_lossy(&report.stderr)
    );
    assert!(stdout.contains("anomalies: none"), "{stdout}");
    assert!(stdout.contains("1 joins, 1 retirements"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}
