//! Zero-cost-when-disabled guarantees for the observability handles.
//!
//! The runtime threads `Tracer`, `Live`, and `Profiler` handles through
//! every hot path on the premise that the disabled state costs one
//! branch and allocates nothing. These tests pin that premise down with
//! a counting allocator (per-thread, so the parallel test harness can't
//! pollute the counts), and check the stronger engine-level property:
//! a fixed-seed simulation produces bit-identical results with the
//! profiler on and off — observation never perturbs the run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use distclass::core::CentroidInstance;
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::linalg::Vector;
use distclass::net::Topology;
use distclass::obs::{Live, Phase, Profiler, ProfilerCore, TraceEvent, Tracer};

thread_local! {
    /// Allocation count for the current thread. `const`-initialized and
    /// destructor-free, so the allocator may touch it at any point in a
    /// thread's life without re-entrancy.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the count is
// a side effect on a destructor-free thread-local.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1)).ok();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it made on this thread.
fn allocations(f: impl FnOnce()) -> u64 {
    let before = THREAD_ALLOCS.with(Cell::get);
    f();
    THREAD_ALLOCS.with(Cell::get) - before
}

#[test]
fn disabled_tracer_emits_without_allocating_or_building_events() {
    let tracer = Tracer::disabled();
    let n = allocations(|| {
        for round in 0..1_000 {
            tracer.emit(|| {
                // The closure must never run on a disabled tracer; a
                // heap-allocating event here would show in the count.
                TraceEvent::FaultActivated {
                    kind: "never-built".to_string(),
                    node: Some(round),
                    at: round as f64,
                }
            });
        }
    });
    assert_eq!(n, 0, "disabled tracer allocated");
}

#[test]
fn disabled_profiler_spans_allocate_nothing_and_never_read_the_clock() {
    let prof = Profiler::disabled();
    let n = allocations(|| {
        let thread = prof.thread("peer0");
        for _ in 0..1_000 {
            let tick = thread.span(Phase::Tick);
            let merge = thread.span(Phase::Merge);
            drop(merge);
            drop(tick);
            // stop() on an untimed guard reports no measurement.
            assert_eq!(thread.span(Phase::Recv).stop(), None);
        }
        drop(thread);
    });
    assert_eq!(n, 0, "disabled profiler allocated");
    assert!(!prof.enabled());
    assert!(prof.core().is_none(), "no core to snapshot when disabled");
}

#[test]
fn disabled_live_handle_is_inert_and_allocation_free() {
    let n = allocations(|| {
        let live = Live::disabled();
        assert!(!live.enabled());
        assert!(live.aggregator().is_none());
        for _ in 0..1_000 {
            // The clone-per-peer pattern the cluster supervisor uses.
            let peer_handle = live.clone();
            assert!(!peer_handle.enabled());
        }
    });
    assert_eq!(n, 0, "disabled live handle allocated");
}

fn bimodal_values(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| {
            let x = if i % 2 == 0 { 0.0 } else { 10.0 };
            Vector::from(vec![x, x])
        })
        .collect()
}

/// The engine-level guarantee behind the ≤3% overhead budget: profiling
/// is purely observational. A fixed-seed run reaches exactly the same
/// state (dispersion bits, message counts, per-node classifications)
/// with the profiler attached as without.
#[test]
fn fixed_seed_run_is_identical_with_profiler_on_and_off() {
    let run = |profile: bool| {
        let inst = Arc::new(CentroidInstance::new(2).expect("k >= 1"));
        let cfg = GossipConfig {
            seed: 7,
            ..GossipConfig::default()
        };
        let values = bimodal_values(12);
        let mut sim = RoundSim::new(Topology::ring(12), inst, &values, &cfg);
        let core = profile.then(|| Arc::new(ProfilerCore::new()));
        if let Some(core) = &core {
            sim = sim.with_profiler(Profiler::new(Arc::clone(core)).thread("sim"));
        }
        sim.run_rounds(30);
        let summaries: Vec<String> = sim
            .live_classifications()
            .iter()
            .flat_map(|c| {
                c.iter()
                    .map(|col| format!("{:?}/{:?}", col.summary, col.weight))
            })
            .collect();
        (
            sim.dispersion().to_bits(),
            sim.metrics(),
            sim.round(),
            summaries,
        )
    };
    let (off, on) = (run(false), run(true));
    assert_eq!(off.0, on.0, "dispersion must match to the bit");
    assert_eq!(off.1, on.1, "message/round counters must match");
    assert_eq!(off.2, on.2);
    assert_eq!(off.3, on.3, "per-node classifications must match");
}
