//! Property-based tests (proptest) for the core invariants: weight
//! quantization, partition restrictions, moment merging, EM grouping, and
//! requirements R2–R4 on random mixtures.

use std::sync::Arc;

use distclass::baselines::HistogramInstance;
use distclass::core::em::{self, EmConfig};
use distclass::core::{
    audit, CentroidInstance, Classification, ClassifierNode, Collection, GaussianSummary,
    GmInstance, Instance, MixtureSummary, MixtureVector, Quantum, Weight,
};
use distclass::linalg::{merge_moments, Matrix, Moments, Vector, WeightedAccumulator};
use proptest::prelude::*;

proptest! {
    #[test]
    fn weight_split_conserves_and_balances(grains in 0u64..1_000_000_000) {
        let w = Weight::from_grains(grains);
        let (keep, send) = w.split();
        prop_assert_eq!(keep + send, w);
        prop_assert!(keep.grains() >= send.grains());
        prop_assert!(keep.grains() - send.grains() <= 1);
    }

    #[test]
    fn classification_split_conserves(grains in proptest::collection::vec(1u64..10_000, 1..10)) {
        let mut c: Classification<u32> = grains
            .iter()
            .enumerate()
            .map(|(i, &g)| Collection::new(i as u32, Weight::from_grains(g)))
            .collect();
        let before = c.total_weight();
        let sent = c.split_off_half();
        prop_assert_eq!(c.total_weight() + sent.total_weight(), before);
    }

    #[test]
    fn centroid_partition_respects_structure(
        xs in proptest::collection::vec(-100.0f64..100.0, 2..12),
        k in 1usize..5,
    ) {
        let inst = CentroidInstance::new(k).expect("k >= 1");
        let big: Classification<Vector> = xs
            .iter()
            .map(|&x| Collection::new(Vector::from([x]), Weight::from_grains(8)))
            .collect();
        let groups = inst.partition(&big);
        prop_assert!(groups.len() <= k);
        let mut seen: Vec<usize> = groups.concat();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..xs.len()).collect();
        prop_assert_eq!(seen, expected);
    }

    #[test]
    fn centroid_partition_never_isolates_quantum_weight(
        xs in proptest::collection::vec(-10.0f64..10.0, 3..10),
    ) {
        let inst = CentroidInstance::new(4).expect("k = 4 is valid");
        // Make every other collection quantum-weight.
        let big: Classification<Vector> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let grains = if i % 2 == 0 { 1 } else { 16 };
                Collection::new(Vector::from([x]), Weight::from_grains(grains))
            })
            .collect();
        let groups = inst.partition(&big);
        if groups.len() > 1 {
            for g in &groups {
                let alone_quantum =
                    g.len() == 1 && big.collection(g[0]).weight.is_quantum();
                prop_assert!(!alone_quantum, "quantum singleton in {groups:?}");
            }
        }
    }

    #[test]
    fn moments_merge_matches_incremental(
        pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0, 0.1f64..5.0), 1..20),
    ) {
        let mut acc = WeightedAccumulator::new(2);
        let mut parts = Vec::new();
        for &(x, y, w) in &pts {
            let v = Vector::from([x, y]);
            acc.push(&v, w);
            parts.push(Moments::of_point(v, w));
        }
        let merged = merge_moments(parts.iter()).expect("non-empty");
        let incremental = acc.moments().expect("non-empty");
        prop_assert!((merged.weight - incremental.weight).abs() < 1e-9);
        prop_assert!(merged.mean.approx_eq(&incremental.mean, 1e-6));
        prop_assert!(merged.cov.approx_eq(&incremental.cov, 1e-5));
    }

    #[test]
    fn em_reduce_covers_all_inputs(
        xs in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 2..15),
        k in 1usize..6,
    ) {
        let comps: Vec<(GaussianSummary, f64)> = xs
            .iter()
            .map(|&(x, y)| (GaussianSummary::from_point(&Vector::from([x, y])), 1.0))
            .collect();
        let out = em::reduce(&comps, k, &EmConfig::default()).expect("valid EM input");
        prop_assert!(out.groups.len() <= k.min(xs.len()));
        let mut seen: Vec<usize> = out.groups.concat();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..xs.len()).collect();
        prop_assert_eq!(seen, expected);
        let pi_total: f64 = out.model.iter().map(|(_, p)| p).sum();
        prop_assert!((pi_total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn centroid_r3_r4_on_random_mixtures(
        vals in proptest::collection::vec(-50.0f64..50.0, 3..8),
        weights_a in proptest::collection::vec(0.0f64..1.0, 3..8),
        weights_b in proptest::collection::vec(0.0f64..1.0, 3..8),
        alpha in 0.01f64..100.0,
    ) {
        let n = vals.len().min(weights_a.len()).min(weights_b.len());
        let values: Vec<Vector> = vals[..n].iter().map(|&x| Vector::from([x])).collect();
        let mk = |w: &[f64]| {
            let mut c = w[..n].to_vec();
            if c.iter().all(|&x| x == 0.0) {
                c[0] = 1.0;
            }
            MixtureVector::from_components(c)
        };
        let inst = CentroidInstance::new(3).expect("k = 3 is valid");
        let va = mk(&weights_a);
        let vb = mk(&weights_b);
        audit::check_r3(&inst, &values, &va, alpha, 1e-6).map_err(TestCaseError::fail)?;
        audit::check_r4(&inst, &values, &[va, vb], 1e-6).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn gaussian_r3_r4_on_random_mixtures(
        vals in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 3..6),
        weights_a in proptest::collection::vec(0.05f64..1.0, 3..6),
        weights_b in proptest::collection::vec(0.05f64..1.0, 3..6),
        alpha in 0.1f64..10.0,
    ) {
        let n = vals.len().min(weights_a.len()).min(weights_b.len());
        let values: Vec<Vector> = vals[..n].iter().map(|&(x, y)| Vector::from([x, y])).collect();
        let inst = GmInstance::new(3).expect("k = 3 is valid");
        let va = MixtureVector::from_components(weights_a[..n].to_vec());
        let vb = MixtureVector::from_components(weights_b[..n].to_vec());
        audit::check_r3(&inst, &values, &va, alpha, 1e-6).map_err(TestCaseError::fail)?;
        audit::check_r4(&inst, &values, &[va, vb], 1e-6).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn histogram_r3_r4_exact(
        vals in proptest::collection::vec(0.0f64..10.0, 3..8),
        weights_a in proptest::collection::vec(0.01f64..1.0, 3..8),
        weights_b in proptest::collection::vec(0.01f64..1.0, 3..8),
        alpha in 0.01f64..100.0,
    ) {
        let n = vals.len().min(weights_a.len()).min(weights_b.len());
        let inst = HistogramInstance::new(2, 0.0, 10.0, 8).expect("valid histogram");
        let va = MixtureVector::from_components(weights_a[..n].to_vec());
        let vb = MixtureVector::from_components(weights_b[..n].to_vec());
        audit::check_r3(&inst, &vals[..n], &va, alpha, 1e-9).map_err(TestCaseError::fail)?;
        audit::check_r4(&inst, &vals[..n], &[va, vb], 1e-9).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn r2_holds_for_all_instances(idx in 0usize..5) {
        let values: Vec<Vector> = (0..5).map(|i| Vector::from([i as f64, 1.0])).collect();
        let e = MixtureVector::basis(5, idx);

        let centroid = CentroidInstance::new(2).expect("k = 2 is valid");
        let f_e = centroid.summarize_mixture(&values, &e);
        prop_assert!(centroid.summary_distance(&f_e, &centroid.val_to_summary(&values[idx])) < 1e-12);

        let gm = GmInstance::new(2).expect("k = 2 is valid");
        let f_e = gm.summarize_mixture(&values, &e);
        prop_assert!(gm.summary_distance(&f_e, &gm.val_to_summary(&values[idx])) < 1e-12);

        let scalars: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let hist = HistogramInstance::new(2, 0.0, 5.0, 5).expect("valid histogram");
        let f_e = hist.summarize_mixture(&scalars, &e);
        prop_assert!(hist.summary_distance(&f_e, &hist.val_to_summary(&scalars[idx])) < 1e-12);
    }

    #[test]
    fn node_exchange_conserves_weight_for_any_sequence(
        ops in proptest::collection::vec((0usize..4, 0usize..4), 1..40),
    ) {
        // Four nodes exchanging in an arbitrary (possibly unfair) pattern:
        // weight is conserved regardless.
        let q = Quantum::new(1 << 8);
        let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
        let mut nodes: Vec<ClassifierNode<CentroidInstance>> = (0..4)
            .map(|i| ClassifierNode::new(Arc::clone(&inst), &Vector::from([i as f64]), q))
            .collect();
        for &(from, to) in &ops {
            if from == to {
                continue;
            }
            let msg = nodes[from].split_for_send();
            if !msg.is_empty() {
                nodes[to].receive(msg);
            }
        }
        let total: u64 = nodes
            .iter()
            .map(|n| n.classification().total_weight().grains())
            .sum();
        prop_assert_eq!(total, 4 * (1 << 8) as u64);
        for n in &nodes {
            prop_assert!(n.classification().len() <= 2);
        }
    }

    #[test]
    fn cholesky_roundtrip_on_random_spd(
        entries in proptest::collection::vec(-2.0f64..2.0, 9),
        diag in 0.5f64..5.0,
    ) {
        // A A^T + diag I is SPD for any A.
        let a = Matrix::from_rows(&[
            &entries[0..3],
            &entries[3..6],
            &entries[6..9],
        ]).expect("static shape");
        let mut spd = a.mul_mat(&a.transposed());
        spd.add_diagonal(diag);
        let chol = spd.cholesky().expect("SPD by construction");
        prop_assert!(chol.reconstruct().approx_eq(&spd, 1e-8));
        let b = Vector::from([1.0, -2.0, 0.5]);
        let x = chol.solve(&b).expect("dimensions match");
        prop_assert!(spd.mul_vec(&x).approx_eq(&b, 1e-6));
    }
}

/// A deliberately *invalid* instance: summaries are coordinate medians.
/// Medians do not compose (the median of medians is not the median of the
/// union), so R4 must fail — and the audit machinery must catch it. This
/// is the reason the paper's instances summarize with means/moments.
mod invalid_median_instance {
    use super::*;
    use distclass::core::{audit, greedy_partition, Classification};

    struct MedianInstance;

    impl Instance for MedianInstance {
        type Value = f64;
        type Summary = f64;

        fn k(&self) -> usize {
            2
        }

        fn val_to_summary(&self, val: &f64) -> f64 {
            *val
        }

        fn merge_set(&self, parts: &[(&f64, f64)]) -> f64 {
            // Weighted median of the part summaries.
            let mut items: Vec<(f64, f64)> = parts.iter().map(|(s, w)| (**s, *w)).collect();
            items.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            let half: f64 = items.iter().map(|(_, w)| w).sum::<f64>() / 2.0;
            let mut acc = 0.0;
            for (s, w) in &items {
                acc += w;
                if acc >= half {
                    return *s;
                }
            }
            items.last().expect("non-empty").0
        }

        fn partition(&self, big: &Classification<f64>) -> Vec<Vec<usize>> {
            greedy_partition(self, big)
        }

        fn summary_distance(&self, a: &f64, b: &f64) -> f64 {
            (a - b).abs()
        }
    }

    impl MixtureSummary for MedianInstance {
        fn summarize_mixture(&self, values: &[f64], mixture: &MixtureVector) -> f64 {
            let mut items: Vec<(f64, f64)> = values
                .iter()
                .zip(mixture.components())
                .filter(|&(_, &w)| w > 0.0)
                .map(|(v, &w)| (*v, w))
                .collect();
            items.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            let half = mixture.norm_l1() / 2.0;
            let mut acc = 0.0;
            for (s, w) in &items {
                acc += w;
                if acc >= half {
                    return *s;
                }
            }
            items.last().expect("non-empty").0
        }
    }

    #[test]
    fn audit_rejects_median_summaries() {
        let inst = MedianInstance;
        // Crafted so the medians provably disagree: the union's median is
        // 5 (mass 3 at 0 plus one grain at 5 crosses the halfway mark),
        // but merging the part medians {0 (mass 3), 6 (mass 4)} gives 6.
        let values = vec![0.0, 5.0, 6.0, 7.0, 8.0];
        let a = MixtureVector::from_components(vec![3.0, 0.0, 0.0, 0.0, 0.0]);
        let b = MixtureVector::from_components(vec![0.0, 1.0, 1.0, 1.0, 1.0]);
        // R3 still holds for medians (scale-invariant)...
        audit::check_r3(&inst, &values, &a, 5.0, 1e-9).expect("medians are scale invariant");
        // ...but R4 must fail.
        let err = audit::check_r4(&inst, &values, &[a, b], 1e-6)
            .expect_err("median instance must violate R4");
        assert!(err.contains("R4 violated"), "unexpected error: {err}");
    }
}
