//! End-to-end Byzantine adversary tests: scripted liars against the
//! stochastic-audit defense, with the grain auditor and the offline
//! `byz-report` replay checking every number twice.
//!
//! The adversary model is *wire-only*: an adversary corrupts the data
//! frames it puts on the wire but keeps its internal books truthful and
//! answers audit probes honestly — a fully consistent liar would be
//! indistinguishable from an honest node with a shifted reading. The
//! defense therefore convicts on arithmetic (claimed weight beyond the
//! ingress bound) or geometry (attested state drifting from what the
//! accuser remembers receiving), never on silence.
//!
//! The sweep honors `DISTCLASS_BYZ_SEEDS` (comma-separated) so CI can
//! matrix over seeds; the default is four.

use std::sync::Arc;
use std::time::Duration;

use distclass::core::CentroidInstance;
use distclass::linalg::Vector;
use distclass::net::Topology;
use distclass::obs::{ByzReport, RingSink, TraceEvent, Tracer};
use distclass::runtime::{
    run_channel_cluster, AdversaryPlan, ClusterConfig, ClusterReport, DefenseConfig, NodeOutcome,
};

fn seeds() -> Vec<u64> {
    match std::env::var("DISTCLASS_BYZ_SEEDS") {
        Ok(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("DISTCLASS_BYZ_SEEDS: bad seed"))
            .collect(),
        Err(_) => (1..=4).collect(),
    }
}

fn two_site_values(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| {
            let x = if i % 2 == 0 { 0.0 } else { 10.0 };
            Vector::from(vec![x, x])
        })
        .collect()
}

fn byz_config(seed: u64, plan: AdversaryPlan, sink: &Arc<RingSink>) -> ClusterConfig {
    ClusterConfig {
        tick: Duration::from_millis(1),
        tol: 1e-6,
        stable_window: Duration::from_millis(150),
        max_wall: Duration::from_secs(30),
        drain_wall: Duration::from_secs(15),
        seed,
        audit: true,
        tracer: Tracer::new(Arc::clone(sink) as _),
        adversaries: Some(Arc::new(plan)),
        defense: Some(DefenseConfig::default()),
        ..ClusterConfig::default()
    }
}

/// Runs the cluster with a ring sink and returns the report plus the
/// captured trace, so assertions can replay it offline.
fn run_traced(
    n: usize,
    seed: u64,
    plan: AdversaryPlan,
) -> (ClusterReport<Vector>, Vec<TraceEvent>) {
    let sink = Arc::new(RingSink::new(1 << 20));
    let config = byz_config(seed, plan, &sink);
    let inst = Arc::new(CentroidInstance::new(2).expect("k >= 1"));
    let report = run_channel_cluster(&Topology::complete(n), inst, &two_site_values(n), &config);
    (report, sink.events())
}

/// Every scripted adversary convicted, no honest node convicted, honest
/// nodes converged and drained, the auditor's books balanced — and the
/// offline replay agreeing with all of it.
fn assert_defended(
    report: &ClusterReport<Vector>,
    events: &[TraceEvent],
    adversaries: &[usize],
    label: &str,
) -> ByzReport {
    assert_eq!(
        report.convicted, adversaries,
        "{label}: convicted set must be exactly the cast"
    );
    assert!(report.converged, "{label}: honest nodes did not converge");
    assert!(report.drained, "{label}: cluster did not drain");
    for r in &report.nodes {
        assert_eq!(
            r.outcome,
            NodeOutcome::Completed,
            "{label}: node {} did not complete",
            r.id
        );
    }
    let audit = report.audit.as_ref().expect("audit was requested");
    assert!(audit.ok(), "{label}: audit failed\n{audit}");

    let byz = ByzReport::from_events(events);
    assert!(
        byz.clean(),
        "{label}: byz-report raised anomalies: {:?}",
        byz.anomalies
    );
    assert_eq!(byz.detection_rate(), 1.0, "{label}");
    assert_eq!(byz.false_positive_rate(), 0.0, "{label}");
    let mut convicted: Vec<usize> = byz.convictions.iter().map(|c| c.node).collect();
    convicted.sort_unstable();
    assert_eq!(convicted, report.convicted, "{label}: trace vs supervisor");
    assert_eq!(
        byz.summary,
        Some((audit.minted_grains, audit.rejected_frames as u64)),
        "{label}: byz_summary must mirror the grain auditor"
    );
    byz
}

/// The flagship acceptance scenario: a 20-node cluster with a 10%
/// colluding cartel whose shifts stay *inside* the robust-merge outlier
/// bound (1.2σ < 1.5σ), so only the stochastic audit can catch them.
/// Every cartel member is convicted, no honest node is, the honest
/// cluster converges, and the books balance to the grain.
#[test]
fn ten_percent_cartel_is_fully_convicted_with_zero_false_positives() {
    const N: usize = 20;
    for seed in seeds() {
        let adversaries = [4usize, 13];
        let plan = AdversaryPlan::new(seed)
            .cartel(&adversaries, 1.2)
            .sigma(1.0);
        let (report, events) = run_traced(N, seed, plan);
        let byz = assert_defended(
            &report,
            &events,
            &adversaries,
            &format!("cartel seed {seed}"),
        );
        // Cartel members lie about *where*, not *how much*: any frames
        // rejected are post-conviction quarantine, never minted weight.
        let audit = report.audit.as_ref().unwrap();
        assert_eq!(
            audit.minted_grains, 0,
            "cartel seed {seed}: a location shift must not mint weight"
        );
        assert!(
            byz.failed_verdicts >= 2,
            "cartel seed {seed}: convictions must come from audit evidence"
        );
    }
}

/// A grain minter inflates the weight of every frame it sends. The
/// ingress screen rejects the very first such frame (the claim exceeds
/// the bound), strikes convict the minter, and the auditor measures the
/// minted weight *exactly* while keeping conservation over true grains.
#[test]
fn minted_weight_is_screened_convicted_and_measured_exactly() {
    const N: usize = 12;
    for seed in seeds() {
        let adversaries = [5usize];
        let plan = AdversaryPlan::new(seed).mint(&adversaries, 16);
        let (report, events) = run_traced(N, seed, plan);
        let byz = assert_defended(&report, &events, &adversaries, &format!("mint seed {seed}"));
        let audit = report.audit.as_ref().unwrap();
        assert!(
            audit.rejected_frames > 0,
            "mint seed {seed}: no frame was screened\n{audit}"
        );
        assert!(
            audit.minted_grains > 0,
            "mint seed {seed}: the mint went unmeasured\n{audit}"
        );
        // The screen rejects the whole frame, so its true grains are a
        // declared loss; conservation holds over what actually exists.
        assert!(
            audit.declared_losses > 0,
            "mint seed {seed}: rejected true grains must be declared\n{audit}"
        );
        let minted_rejections = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::FrameRejected { reason, .. } if reason == "minted"))
            .count();
        assert!(
            minted_rejections > 0,
            "mint seed {seed}: no minted rejection traced"
        );
        assert!(byz.rejections.contains_key(&5), "mint seed {seed}");
    }
}

/// The CI adversary matrix: every attack kind, across the seed sweep,
/// must end in 100% detection with zero false positives.
#[test]
fn adversary_matrix_detects_every_attack_kind_across_seeds() {
    const N: usize = 12;
    for seed in seeds() {
        for kind in ["mint", "poison", "cartel"] {
            let adversaries = [3usize, 9];
            let plan = match kind {
                "mint" => AdversaryPlan::new(seed).mint(&adversaries, 16),
                "poison" => AdversaryPlan::new(seed).poison(&adversaries, 1.2),
                _ => AdversaryPlan::new(seed).cartel(&adversaries, 1.2),
            };
            let (report, events) = run_traced(N, seed, plan);
            assert_defended(
                &report,
                &events,
                &adversaries,
                &format!("{kind} seed {seed}"),
            );
        }
    }
}

/// With the defense disabled the same cartel goes entirely unconvicted —
/// and the offline replay says so loudly instead of reporting a
/// meaningless 0% detection as clean.
#[test]
fn undefended_run_is_flagged_not_silently_passed() {
    const N: usize = 12;
    let seed = 7;
    let sink = Arc::new(RingSink::new(1 << 20));
    let plan = AdversaryPlan::new(seed).cartel(&[2, 8], 1.2);
    let config = ClusterConfig {
        defense: None,
        // An unconvicted cartel keeps dragging honest books, so the run
        // may legitimately never converge — don't wait long for it.
        max_wall: Duration::from_secs(5),
        ..byz_config(seed, plan, &sink)
    };
    let inst = Arc::new(CentroidInstance::new(2).expect("k >= 1"));
    let report = run_channel_cluster(&Topology::complete(N), inst, &two_site_values(N), &config);
    assert!(
        report.convicted.is_empty(),
        "nobody convicts without a defense"
    );
    let byz = ByzReport::from_events(&sink.events());
    assert!(
        !byz.clean(),
        "an undefended adversarial run must not gate-pass"
    );
    assert_eq!(byz.detection_rate(), 0.0);
}

/// Determinism: the same adversary spec and seed produce identical
/// digests; a different seed diverges (the collusion direction is part
/// of the schedule).
#[test]
fn adversary_plans_are_deterministic_in_spec_and_seed() {
    let spec = "cartel@1,5:shift=1.2; mint@3:units=16; sigma=2";
    let a = AdversaryPlan::parse(spec, 17).expect("spec parses");
    let b = AdversaryPlan::parse(spec, 17).expect("spec parses");
    assert_eq!(a, b);
    assert_eq!(a.digest(), b.digest());
    let c = AdversaryPlan::parse(spec, 18).expect("spec parses");
    assert_ne!(a.digest(), c.digest(), "seed must be part of the schedule");
}
