//! End-to-end convergence tests (Theorem 1 exercised empirically): all
//! nodes must converge to a common classification over any connected
//! topology, for any instance, under synchrony and asynchrony.

use std::sync::Arc;

use distclass::baselines::HistogramInstance;
use distclass::core::{CentroidInstance, GmInstance};
use distclass::gossip::{AsyncSim, GossipConfig, RoundSim};
use distclass::linalg::Vector;
use distclass::net::{DelayModel, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bimodal(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| Vector::from([if i % 2 == 0 { 0.0 } else { 8.0 } + 0.01 * i as f64]))
        .collect()
}

fn centroid_converges_on(topology: Topology, max_rounds: u64) {
    let n = topology.len();
    let values = bimodal(n);
    let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(topology, inst, &values, &GossipConfig::default());
    sim.run_rounds(max_rounds);
    assert!(
        sim.dispersion() < 0.3,
        "dispersion {} after {max_rounds} rounds",
        sim.dispersion()
    );
    // The two collections should sit near the true cluster centroids.
    for c in sim.live_classifications() {
        assert_eq!(c.len(), 2);
        let mut means: Vec<f64> = c.iter().map(|col| col.summary[0]).collect();
        means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
        assert!((means[0] - 0.1).abs() < 1.0, "means {means:?}");
        assert!((means[1] - 8.1).abs() < 1.0, "means {means:?}");
    }
}

#[test]
fn centroid_converges_on_complete() {
    centroid_converges_on(Topology::complete(40), 60);
}

#[test]
fn centroid_converges_on_ring() {
    centroid_converges_on(Topology::ring(20), 250);
}

#[test]
fn centroid_converges_on_grid() {
    centroid_converges_on(Topology::grid(5, 5), 200);
}

#[test]
fn centroid_converges_on_star() {
    centroid_converges_on(Topology::star(20), 150);
}

#[test]
fn centroid_converges_on_directed_cycle() {
    // The sparsest strongly connected topology: information flows one way.
    centroid_converges_on(Topology::directed_cycle(12), 400);
}

#[test]
fn centroid_converges_on_erdos_renyi() {
    let mut rng = StdRng::seed_from_u64(5);
    let topo = Topology::erdos_renyi(30, 0.2, &mut rng).expect("connected G(n,p)");
    centroid_converges_on(topo, 200);
}

#[test]
fn centroid_converges_on_random_geometric() {
    let mut rng = StdRng::seed_from_u64(8);
    let (topo, _) = Topology::random_geometric(30, 0.45, &mut rng).expect("connected RGG");
    centroid_converges_on(topo, 200);
}

#[test]
fn gm_converges_and_separates_clusters() {
    let n = 40;
    let values = bimodal(n);
    let inst = Arc::new(GmInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(
        Topology::complete(n),
        inst,
        &values,
        &GossipConfig::default(),
    );
    sim.run_rounds(60);
    assert!(sim.dispersion() < 0.3, "dispersion {}", sim.dispersion());
    for c in sim.live_classifications() {
        let mut means: Vec<f64> = c.iter().map(|col| col.summary.mean[0]).collect();
        means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
        assert!((means[0] - 0.1).abs() < 1.0, "means {means:?}");
        assert!(
            (*means.last().expect("non-empty") - 8.1).abs() < 1.0,
            "means {means:?}"
        );
    }
}

#[test]
fn histogram_instance_converges_to_global_distribution() {
    let n = 36;
    let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64).collect();
    let inst = Arc::new(HistogramInstance::new(1, 0.0, 9.0, 9).expect("valid histogram"));
    let mut sim = RoundSim::new(
        Topology::grid(6, 6),
        Arc::clone(&inst),
        &values,
        &GossipConfig::default(),
    );
    sim.run_rounds(400);
    // Uniform inputs → uniform histogram at every node.
    for c in sim.live_classifications() {
        assert_eq!(c.len(), 1);
        for &m in c.collection(0).summary.masses() {
            assert!((m - 1.0 / 9.0).abs() < 0.02, "mass {m}");
        }
    }
}

#[test]
fn async_convergence_under_exponential_delays() {
    let n = 20;
    let values = bimodal(n);
    let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
    let mut sim = AsyncSim::new(
        Topology::ring(n),
        inst,
        &values,
        &GossipConfig::default(),
        DelayModel::Exponential { mean: 2.0 },
    );
    sim.run_until(600.0);
    assert!(sim.dispersion() < 0.3, "dispersion {}", sim.dispersion());
}

#[test]
fn async_convergence_on_grid_with_uniform_delays() {
    let n = 25;
    let values = bimodal(n);
    let inst = Arc::new(GmInstance::new(2).expect("k = 2 is valid"));
    let mut sim = AsyncSim::new(
        Topology::grid(5, 5),
        inst,
        &values,
        &GossipConfig::default(),
        DelayModel::Uniform { min: 0.2, max: 4.0 },
    );
    sim.run_until(500.0);
    assert!(sim.dispersion() < 0.4, "dispersion {}", sim.dispersion());
}

#[test]
fn round_robin_and_random_selection_both_converge() {
    use distclass::gossip::SelectorKind;
    for selector in [SelectorKind::RoundRobin, SelectorKind::UniformRandom] {
        let values = bimodal(24);
        let cfg = GossipConfig {
            selector,
            ..GossipConfig::default()
        };
        let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
        let mut sim = RoundSim::new(Topology::complete(24), inst, &values, &cfg);
        sim.run_rounds(80);
        assert!(
            sim.dispersion() < 0.3,
            "{selector:?} dispersion {}",
            sim.dispersion()
        );
    }
}

#[test]
fn immediate_and_batched_delivery_both_converge() {
    use distclass::gossip::DeliveryMode;
    for delivery in [DeliveryMode::Immediate, DeliveryMode::Batched] {
        let values = bimodal(24);
        let cfg = GossipConfig {
            delivery,
            ..GossipConfig::default()
        };
        let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
        let mut sim = RoundSim::new(Topology::complete(24), inst, &values, &cfg);
        sim.run_rounds(80);
        assert!(
            sim.dispersion() < 0.3,
            "{delivery:?} dispersion {}",
            sim.dispersion()
        );
    }
}

#[test]
fn identical_values_converge_to_single_summary() {
    let values: Vec<Vector> = (0..16).map(|_| Vector::from([3.0])).collect();
    let inst = Arc::new(CentroidInstance::new(3).expect("k = 3 is valid"));
    let mut sim = RoundSim::new(
        Topology::complete(16),
        inst,
        &values,
        &GossipConfig::default(),
    );
    sim.run_rounds(40);
    for c in sim.live_classifications() {
        for col in c.iter() {
            assert!((col.summary[0] - 3.0).abs() < 1e-9);
        }
    }
    assert!(sim.dispersion() < 1e-12, "dispersion {}", sim.dispersion());
}

#[test]
fn k_equals_one_computes_global_mean() {
    // With k = 1 the algorithm degenerates to gossip averaging.
    let n = 20;
    let values: Vec<Vector> = (0..n).map(|i| Vector::from([i as f64])).collect();
    let inst = Arc::new(CentroidInstance::new(1).expect("k = 1 is valid"));
    let mut sim = RoundSim::new(
        Topology::complete(n),
        inst,
        &values,
        &GossipConfig::default(),
    );
    sim.run_rounds(80);
    for c in sim.live_classifications() {
        assert_eq!(c.len(), 1);
        assert!(
            (c.collection(0).summary[0] - 9.5).abs() < 0.05,
            "mean {}",
            c.collection(0).summary[0]
        );
    }
}

#[test]
fn pull_and_push_pull_converge_under_asynchrony() {
    use distclass::gossip::GossipPattern;
    for pattern in [GossipPattern::Pull, GossipPattern::PushPull] {
        let values = bimodal(16);
        let cfg = GossipConfig {
            pattern,
            ..GossipConfig::default()
        };
        let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
        let mut sim = AsyncSim::new(
            Topology::ring(16),
            inst,
            &values,
            &cfg,
            DelayModel::Uniform { min: 0.1, max: 2.0 },
        );
        sim.run_until(700.0);
        assert!(
            sim.dispersion() < 0.4,
            "{pattern:?} dispersion {}",
            sim.dispersion()
        );
    }
}

#[test]
fn pull_and_push_pull_converge_in_rounds() {
    use distclass::gossip::GossipPattern;
    for pattern in [GossipPattern::Pull, GossipPattern::PushPull] {
        let values = bimodal(24);
        let cfg = GossipConfig {
            pattern,
            ..GossipConfig::default()
        };
        let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
        let mut sim = RoundSim::new(Topology::complete(24), inst, &values, &cfg);
        sim.run_rounds(100);
        assert!(
            sim.dispersion() < 0.3,
            "{pattern:?} dispersion {}",
            sim.dispersion()
        );
    }
}
