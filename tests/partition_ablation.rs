//! Ablation: EM mixture reduction vs greedy closest-mean merging inside
//! the GM instance. On workloads where covariance carries the signal
//! (Figure 1's moral), EM-based partitioning preserves cluster structure
//! that mean-distance-only merging destroys.

use std::sync::Arc;

use distclass::baselines::em_central;
use distclass::core::{GaussianSummary, GmInstance, PartitionStrategy};
use distclass::experiments::data::sample_gaussian;
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::linalg::{Matrix, Vector};
use distclass::net::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A tight cluster beside a wide one whose tail reaches past the tight
/// cluster's mean: mean distance alone under-separates them.
fn covariance_sensitive_values(n: usize, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    let tight_mean = Vector::from([0.0, 0.0]);
    let tight_cov = Matrix::identity(2).scaled(0.05);
    let wide_mean = Vector::from([4.0, 0.0]);
    let wide_cov = Matrix::identity(2).scaled(6.0);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                sample_gaussian(&mut rng, &tight_mean, &tight_cov)
            } else {
                sample_gaussian(&mut rng, &wide_mean, &wide_cov)
            }
        })
        .collect()
}

fn run_with(strategy: PartitionStrategy, values: &[Vector]) -> f64 {
    let n = values.len();
    let inst = Arc::new(
        GmInstance::new(2)
            .expect("k = 2 is valid")
            .with_partition_strategy(strategy),
    );
    let mut sim = RoundSim::new(
        Topology::complete(n),
        inst,
        values,
        &GossipConfig::default(),
    );
    sim.run_rounds(40);
    let c = sim.classification_of(0);
    let total = c.total_weight();
    let model: Vec<(GaussianSummary, f64)> = c
        .iter()
        .map(|col| (col.summary.clone(), col.weight.fraction_of(total)))
        .collect();
    em_central::avg_log_likelihood(values, &model, 1e-6).expect("valid model")
}

#[test]
fn em_partitioning_beats_greedy_on_covariance_sensitive_data() {
    let values = covariance_sensitive_values(200, 31);
    let ll_em = run_with(PartitionStrategy::Em, &values);
    let ll_greedy = run_with(PartitionStrategy::Greedy, &values);
    assert!(
        ll_em >= ll_greedy - 1e-9,
        "EM {ll_em} should not lose to greedy {ll_greedy}"
    );
}

#[test]
fn both_strategies_satisfy_structural_invariants() {
    // Whatever the quality difference, both strategies must keep the
    // protocol sound: weight conserved, k respected, summaries finite.
    for strategy in [PartitionStrategy::Em, PartitionStrategy::Greedy] {
        let values = covariance_sensitive_values(60, 5);
        let inst = Arc::new(
            GmInstance::new(2)
                .expect("k = 2 is valid")
                .with_partition_strategy(strategy),
        );
        let mut sim = RoundSim::new(
            Topology::complete(60),
            inst,
            &values,
            &GossipConfig::default(),
        );
        sim.run_rounds(30);
        assert_eq!(
            sim.total_live_weight().grains(),
            60 * distclass::core::Quantum::default().grains_per_unit()
        );
        for c in sim.live_classifications() {
            assert!(c.len() <= 2);
            for col in c.iter() {
                assert!(col.summary.mean.is_finite());
                assert!(col.summary.cov.is_finite());
            }
        }
    }
}

#[test]
fn strategy_accessor_reflects_choice() {
    let em = GmInstance::new(2).expect("valid");
    assert_eq!(em.partition_strategy(), PartitionStrategy::Em);
    let greedy = GmInstance::new(2)
        .expect("valid")
        .with_partition_strategy(PartitionStrategy::Greedy);
    assert_eq!(greedy.partition_strategy(), PartitionStrategy::Greedy);
}
