//! Live verification of Lemma 1 (§4.2.2): running the real protocol with
//! auxiliary mixture-vector tracking, every collection at every checkpoint
//! must satisfy `f(c.aux) = c.summary` and `‖c.aux‖₁ = c.weight` — for all
//! three bundled instances.

use std::sync::Arc;

use distclass::baselines::HistogramInstance;
use distclass::core::{audit, CentroidInstance, GmInstance, MixtureSummary, Quantum};
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::linalg::Vector;
use distclass::net::Topology;

fn audited_cfg() -> GossipConfig {
    GossipConfig {
        audit: true,
        quantum: Quantum::new(1 << 16),
        ..GossipConfig::default()
    }
}

fn check_all_nodes<I: MixtureSummary>(
    sim: &RoundSim<I>,
    values: &[I::Value],
    quantum: Quantum,
    tol: f64,
) {
    for &i in &sim.live_nodes() {
        audit::check_lemma1(
            sim.instance().as_ref(),
            values,
            sim.classification_of(i),
            quantum,
            tol,
        )
        .unwrap_or_else(|e| panic!("Lemma 1 violated at node {i}: {e}"));
    }
}

#[test]
fn lemma1_holds_for_centroid_instance_throughout() {
    let n = 16;
    let values: Vec<Vector> = (0..n)
        .map(|i| Vector::from([i as f64 * 0.7, (i % 3) as f64]))
        .collect();
    let cfg = audited_cfg();
    let inst = Arc::new(CentroidInstance::new(3).expect("k = 3 is valid"));
    let mut sim = RoundSim::new(Topology::complete(n), inst, &values, &cfg);
    for _ in 0..15 {
        sim.run_round();
        check_all_nodes(&sim, &values, cfg.quantum, 1e-6);
    }
}

#[test]
fn lemma1_holds_for_gaussian_instance_throughout() {
    let n = 16;
    let values: Vec<Vector> = (0..n)
        .map(|i| Vector::from([if i % 2 == 0 { 0.0 } else { 6.0 }, i as f64 * 0.1]))
        .collect();
    let cfg = audited_cfg();
    let inst = Arc::new(GmInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(Topology::complete(n), inst, &values, &cfg);
    for _ in 0..15 {
        sim.run_round();
        // Gaussian merges accumulate float error in covariances; the
        // summary distance (mean L2) stays tight.
        check_all_nodes(&sim, &values, cfg.quantum, 1e-6);
    }
}

#[test]
fn lemma1_holds_for_histogram_instance_throughout() {
    let n = 25;
    let values: Vec<f64> = (0..n).map(|i| (i % 10) as f64).collect();
    let cfg = audited_cfg();
    let inst = Arc::new(HistogramInstance::new(2, 0.0, 10.0, 10).expect("valid histogram"));
    let mut sim = RoundSim::new(Topology::grid(5, 5), inst, &values, &cfg);
    for _ in 0..25 {
        sim.run_round();
        check_all_nodes(&sim, &values, cfg.quantum, 1e-9);
    }
}

#[test]
fn lemma1_holds_on_sparse_topology_with_round_robin() {
    use distclass::gossip::SelectorKind;
    let n = 12;
    let values: Vec<Vector> = (0..n).map(|i| Vector::from([i as f64])).collect();
    let cfg = GossipConfig {
        selector: SelectorKind::RoundRobin,
        ..audited_cfg()
    };
    let inst = Arc::new(CentroidInstance::new(4).expect("k = 4 is valid"));
    let mut sim = RoundSim::new(Topology::ring(n), inst, &values, &cfg);
    for _ in 0..40 {
        sim.run_round();
        check_all_nodes(&sim, &values, cfg.quantum, 1e-6);
    }
}

#[test]
fn aux_totals_account_for_every_input_value() {
    // Summing the auxiliary vectors over ALL collections in the system
    // reconstructs exactly one unit of every input value.
    let n = 10;
    let values: Vec<Vector> = (0..n).map(|i| Vector::from([i as f64])).collect();
    let cfg = audited_cfg();
    let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(Topology::complete(n), inst, &values, &cfg);
    sim.run_rounds(20);
    let mut totals = vec![0.0_f64; n];
    for &i in &sim.live_nodes() {
        for col in sim.classification_of(i).iter() {
            let aux = col.aux.as_ref().expect("audited run");
            for (j, t) in totals.iter_mut().enumerate() {
                *t += aux.component(j);
            }
        }
    }
    for (j, t) in totals.iter().enumerate() {
        assert!((t - 1.0).abs() < 1e-9, "value {j} accounts to {t}");
    }
}
