//! Weight-quantization sensitivity: the paper requires `q ≪ 1/n` (the
//! quantum exists to rule out Zeno executions, not to be felt). These
//! tests pin down both sides: fine quanta leave behavior unchanged, while
//! absurdly coarse quanta visibly stall the weight flow — and conservation
//! is exact in every regime.

use std::sync::Arc;

use distclass::core::{CentroidInstance, Quantum};
use distclass::gossip::{GossipConfig, RoundSim};
use distclass::linalg::Vector;
use distclass::net::Topology;

fn values(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| Vector::from([if i % 2 == 0 { 0.0 } else { 6.0 } + 0.01 * i as f64]))
        .collect()
}

fn run_with_quantum(grains_per_unit: u64, rounds: u64) -> (f64, u64) {
    let n = 16;
    let q = Quantum::new(grains_per_unit);
    let cfg = GossipConfig {
        quantum: q,
        ..GossipConfig::default()
    };
    let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
    let mut sim = RoundSim::new(Topology::complete(n), inst, &values(n), &cfg);
    sim.run_rounds(rounds);
    assert_eq!(
        sim.total_live_weight().grains(),
        n as u64 * grains_per_unit,
        "conservation must hold at any quantum"
    );
    (sim.dispersion(), sim.metrics().messages_sent)
}

#[test]
fn fine_quanta_converge_identically_well() {
    // q = 2⁻¹⁰ … 2⁻²⁰, all far below 1/n = 1/16: dispersion ends tiny.
    for grains in [1u64 << 10, 1 << 14, 1 << 20] {
        let (dispersion, _) = run_with_quantum(grains, 60);
        assert!(dispersion < 0.2, "q = 1/{grains}: dispersion {dispersion}");
    }
}

#[test]
fn coarse_quantum_stalls_weight_flow() {
    // q = 1/2 (one unit is just two grains): after a couple of splits every
    // collection is one grain and nothing can be sent any more.
    let (_, messages_fine) = run_with_quantum(1 << 16, 40);
    let (_, messages_coarse) = run_with_quantum(2, 40);
    // Merging replenishes grains, so flow does not stop entirely — but a
    // large fraction of ticks find nothing sendable.
    assert!(
        messages_coarse < messages_fine * 3 / 4,
        "coarse quantum should throttle sends: {messages_coarse} vs {messages_fine}"
    );
}

#[test]
fn quantum_of_one_grain_per_unit_freezes_nodes_immediately() {
    // The most extreme case: every node's whole value is a single grain.
    // Splits send nothing, so every node keeps exactly its own value and
    // never learns anything — yet nothing crashes and weight is conserved.
    let (dispersion, messages) = run_with_quantum(1, 20);
    assert_eq!(messages, 0);
    assert!(
        dispersion > 1.0,
        "nodes cannot have converged: {dispersion}"
    );
}

#[test]
fn convergence_result_insensitive_to_fine_quantum_choice() {
    // The final classifications under two fine quanta agree with each
    // other (same seed ⇒ same gossip pattern; only rounding differs).
    let n = 16;
    let run = |grains: u64| {
        let cfg = GossipConfig {
            quantum: Quantum::new(grains),
            ..GossipConfig::default()
        };
        let inst = Arc::new(CentroidInstance::new(2).expect("k = 2 is valid"));
        let mut sim = RoundSim::new(Topology::complete(n), inst, &values(n), &cfg);
        sim.run_rounds(60);
        let c = sim.classification_of(0);
        let mut means: Vec<f64> = c.iter().map(|col| col.summary[0]).collect();
        means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
        means
    };
    let coarse = run(1 << 12);
    let fine = run(1 << 24);
    assert_eq!(coarse.len(), fine.len());
    for (a, b) in coarse.iter().zip(fine.iter()) {
        assert!((a - b).abs() < 0.05, "quantum-sensitive result: {a} vs {b}");
    }
}
