//! Degenerate-input property tests for the baselines: empty inputs,
//! identical points (starved/empty clusters), and heavily crashed
//! networks must yield errors or well-defined values — never panics or
//! NaN-poisoned orderings.

use distclass::baselines::{kmeans, newscast, PushSumSim};
use distclass::linalg::Vector;
use distclass::net::{CrashModel, NodeId, Topology};
use proptest::prelude::*;

proptest! {
    /// Identical points starve every cluster but one: Lloyd must converge
    /// to a single centroid at the common point, whatever `k` asks for.
    #[test]
    fn kmeans_identical_points_collapse_to_one_centroid(
        x in -50.0f64..50.0,
        n in 1usize..40,
        k in 1usize..8,
    ) {
        let pts: Vec<Vector> = (0..n).map(|_| Vector::from([x, -x])).collect();
        let r = kmeans::lloyd(&pts, k, 50).expect("valid arguments");
        // Starved centroids must be dropped.
        prop_assert_eq!(r.centroids.len(), 1);
        prop_assert!((r.centroids[0][0] - x).abs() < 1e-12);
        prop_assert!(r.assignments.iter().all(|&a| a == 0));
        prop_assert!(r.inertia.abs() < 1e-18);
    }

    /// The empty point set is an error, not a panic, for every `k`.
    #[test]
    fn kmeans_empty_points_is_an_error(k in 0usize..6) {
        prop_assert!(kmeans::lloyd(&[], k, 10).is_err());
    }

    /// Newscast EM over identical readings: the mixture degenerates to a
    /// point mass, and the NaN-safe anchor selection must not panic when
    /// every candidate distance ties at zero.
    #[test]
    fn newscast_identical_values_yield_finite_point_mass(
        x in -10.0f64..10.0,
        n in 2usize..12,
        k in 1usize..4,
    ) {
        let values: Vec<Vector> = (0..n).map(|_| Vector::from([x])).collect();
        let cfg = newscast::NewscastConfig {
            k,
            em_iters: 2,
            cycles_per_iter: 4,
            ..newscast::NewscastConfig::default()
        };
        let r = newscast::run(&Topology::complete(n), &values, &cfg)
            .expect("valid arguments");
        for node_model in &r.models {
            for (summary, pi) in node_model {
                prop_assert!(pi.is_finite() && *pi >= 0.0);
                prop_assert!((summary.mean[0] - x).abs() < 1e-6);
            }
        }
    }

    /// Crash everything the engine allows (it refuses to kill the last
    /// node): the lone survivor still produces a finite estimate, a
    /// well-defined weight spread of zero, and `None` never leaks a NaN.
    #[test]
    fn push_sum_survives_maximal_crash_schedule(n in 2usize..16, seed in 0u64..64) {
        let values: Vec<Vector> = (0..n).map(|i| Vector::from([i as f64])).collect();
        let plan: Vec<(u64, NodeId)> = (0..n).map(|i| (0, i)).collect();
        let mut sim = PushSumSim::with_crash_model(
            Topology::complete(n),
            &values,
            seed,
            CrashModel::Scheduled(plan),
        );
        sim.run_rounds(3);
        prop_assert_eq!(sim.live_count(), 1);
        let truth = Vector::from([(n as f64 - 1.0) / 2.0]);
        let (mean, max) = sim.error_stats(&truth).expect("one survivor remains");
        prop_assert!(mean.is_finite() && max.is_finite());
        prop_assert_eq!(sim.weight_spread(), 0.0);
    }

    /// Regression: `NetMetrics::in_flight()` must never panic (it used to
    /// be an unchecked `sent - delivered - dropped`) under crash-restart
    /// schedules, where a revived node's stale outbox can skew the
    /// delivered/dropped accounting past the sent count.
    #[test]
    fn in_flight_never_panics_under_crash_restart(
        n in 3usize..12,
        seed in 0u64..64,
        crash_round in 1u64..4,
        downtime in 1u64..5,
    ) {
        let values: Vec<Vector> = (0..n).map(|i| Vector::from([i as f64])).collect();
        let schedule: Vec<(u64, Option<u64>, NodeId)> = (0..n / 2)
            .map(|i| (crash_round, Some(crash_round + downtime), i))
            .collect();
        let mut sim = PushSumSim::with_crash_model(
            Topology::complete(n),
            &values,
            seed,
            CrashModel::CrashRestart { schedule },
        );
        for _ in 0..(crash_round + downtime + 3) {
            sim.run_round();
            let m = sim.metrics();
            // Saturating arithmetic: whatever the crash bookkeeping did,
            // the derived gauge stays a sane u64.
            prop_assert!(m.in_flight() <= m.messages_sent);
        }
    }
}
